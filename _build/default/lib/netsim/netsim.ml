module Sim = Dessim.Sim
module Graph = Topo.Graph
module Topologies = Topo.Topologies

type control_latency =
  | Geo
  | Normal_dist of { mean : float; stddev : float }
  | Fixed of float

type config = {
  switch_processing_ms : float;
  rule_update_mean_ms : float option;
  resubmit_delay_ms : float;
  control_latency : control_latency;
  controller_service_ms : float;
  controller_background_ms : float;
}

let default_config =
  {
    switch_processing_ms = 0.5;
    rule_update_mean_ms = None;
    resubmit_delay_ms = 0.25;
    control_latency = Geo;
    controller_service_ms = 0.25;
    controller_background_ms = 0.0;
  }

type fault = Deliver | Drop | Delay of float | Corrupt | Duplicate

type event =
  | Data of { port : int; bytes : Bytes.t }
  | From_controller of Bytes.t

type counters = {
  mutable data_packets : int;
  mutable control_to_switch : int;
  mutable control_to_controller : int;
  mutable resubmissions : int;
  mutable dropped_by_fault : int;
}

type t = {
  sim : Sim.t;
  topo : Topologies.t;
  cfg : config;
  ports : int array array; (* node -> port -> neighbor *)
  mutable handlers : (event -> unit) array;
  mutable controller_handler : (from:int -> Bytes.t -> unit) option;
  mutable data_fault : (from:int -> to_:int -> Bytes.t -> fault) option;
  mutable observers : (float -> int -> int -> Bytes.t -> unit) list;
  ctl_latency : float array; (* per-node control-plane latency (Geo/Fixed) *)
  mutable controller_busy_until : float;
  stats : counters;
}

let compute_ctl_latencies topo cfg =
  let g = topo.Topologies.graph in
  let n = Graph.node_count g in
  Array.init n (fun node ->
      match cfg.control_latency with
      | Fixed ms -> ms
      | Normal_dist _ -> 0.0 (* sampled per message instead *)
      | Geo ->
        if node = topo.Topologies.controller then 0.05
        else (
          match Graph.shortest_path g ~src:topo.Topologies.controller ~dst:node with
          | Some path -> Graph.path_latency g path
          | None -> invalid_arg "Netsim: controller cannot reach every node"))

let create ?(config = default_config) sim topo =
  let g = topo.Topologies.graph in
  let n = Graph.node_count g in
  let ports = Array.init n (fun node -> Array.of_list (Graph.neighbors g node)) in
  {
    sim;
    topo;
    cfg = config;
    ports;
    handlers = Array.make n (fun _ -> ());
    controller_handler = None;
    data_fault = None;
    observers = [];
    ctl_latency = compute_ctl_latencies topo config;
    controller_busy_until = 0.0;
    stats =
      {
        data_packets = 0;
        control_to_switch = 0;
        control_to_controller = 0;
        resubmissions = 0;
        dropped_by_fault = 0;
      };
  }

let sim t = t.sim
let topology t = t.topo
let graph t = t.topo.Topologies.graph
let config t = t.cfg
let counters t = t.stats

let port_count t ~node = Array.length t.ports.(node)

let neighbor_of_port t ~node ~port =
  if port < 0 || port >= Array.length t.ports.(node) then None
  else Some t.ports.(node).(port)

let port_of_neighbor t ~node ~neighbor =
  let arr = t.ports.(node) in
  let rec find i =
    if i >= Array.length arr then
      invalid_arg
        (Printf.sprintf "Netsim.port_of_neighbor: %d is not adjacent to %d" neighbor node)
    else if arr.(i) = neighbor then i
    else find (i + 1)
  in
  find 0

let attach t ~node handler = t.handlers.(node) <- handler
let set_controller t handler = t.controller_handler <- Some handler
let set_data_fault t hook = t.data_fault <- Some hook
let clear_data_fault t = t.data_fault <- None
let on_delivery t f = t.observers <- t.observers @ [ f ]

let sample_ctl_latency t ~node =
  match t.cfg.control_latency with
  | Normal_dist { mean; stddev } -> Sim.normal t.sim ~mean ~stddev
  | Geo | Fixed _ -> t.ctl_latency.(node)

let control_latency_of t ~node = sample_ctl_latency t ~node

let corrupt_bytes rng bytes =
  let b = Bytes.copy bytes in
  if Bytes.length b > 0 then begin
    let i = Random.State.int rng (Bytes.length b) in
    let bit = 1 lsl Random.State.int rng 8 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor bit))
  end;
  b

let deliver_data t ~node ~port bytes delay =
  Sim.schedule t.sim ~delay (fun () ->
      t.stats.data_packets <- t.stats.data_packets + 1;
      List.iter (fun f -> f (Sim.now t.sim) node port bytes) t.observers;
      t.handlers.(node) (Data { port; bytes }))

let transmit t ~from ~port bytes =
  match neighbor_of_port t ~node:from ~port with
  | None -> () (* unbound port: packet leaves the modelled network *)
  | Some neighbor ->
    let link = Graph.latency (graph t) from neighbor in
    let delay = link +. t.cfg.switch_processing_ms in
    let rx_port = port_of_neighbor t ~node:neighbor ~neighbor:from in
    let action =
      match t.data_fault with
      | None -> Deliver
      | Some hook -> hook ~from ~to_:neighbor bytes
    in
    (match action with
     | Deliver -> deliver_data t ~node:neighbor ~port:rx_port bytes delay
     | Drop -> t.stats.dropped_by_fault <- t.stats.dropped_by_fault + 1
     | Delay extra -> deliver_data t ~node:neighbor ~port:rx_port bytes (delay +. extra)
     | Corrupt ->
       deliver_data t ~node:neighbor ~port:rx_port (corrupt_bytes (Sim.rng t.sim) bytes) delay
     | Duplicate ->
       deliver_data t ~node:neighbor ~port:rx_port bytes delay;
       deliver_data t ~node:neighbor ~port:rx_port bytes (delay +. 0.01))

let resubmit t ~node bytes =
  t.stats.resubmissions <- t.stats.resubmissions + 1;
  Sim.schedule t.sim ~delay:t.cfg.resubmit_delay_ms (fun () ->
      t.handlers.(node) (Data { port = -1; bytes }))

(* The controller is a single-thread FIFO server: each message (in either
   direction) occupies it for [controller_service_ms]. *)
let controller_slot t =
  let now = Sim.now t.sim in
  let background =
    if t.cfg.controller_background_ms <= 0.0 then 0.0
    else Sim.exponential t.sim ~mean:t.cfg.controller_background_ms
  in
  let start = Float.max now t.controller_busy_until in
  t.controller_busy_until <- start +. t.cfg.controller_service_ms +. background;
  t.controller_busy_until -. now

let notify_controller t ~from bytes =
  t.stats.control_to_controller <- t.stats.control_to_controller + 1;
  let uplink = sample_ctl_latency t ~node:from in
  Sim.schedule t.sim ~delay:uplink (fun () ->
      let service_done = controller_slot t in
      Sim.schedule t.sim ~delay:service_done (fun () ->
          match t.controller_handler with
          | Some handler -> handler ~from bytes
          | None -> ()))

let controller_transmit t ~to_ bytes =
  t.stats.control_to_switch <- t.stats.control_to_switch + 1;
  let service_done = controller_slot t in
  let downlink = sample_ctl_latency t ~node:to_ in
  Sim.schedule t.sim ~delay:(service_done +. downlink +. t.cfg.switch_processing_ms)
    (fun () -> t.handlers.(to_) (From_controller bytes))

let rule_update_delay t ~node =
  ignore node;
  match t.cfg.rule_update_mean_ms with
  | None -> 0.0
  | Some mean -> Sim.exponential t.sim ~mean
