module Register = P4rt.Register

type t = {
  (* Table 1 registers, per flow. *)
  new_version : Register.t;
  new_distance : Register.t;
  old_version : Register.t;
  old_distance : Register.t;
  egress_port : Register.t;
  notify_port : Register.t;
  flow_size : Register.t;
  flow_priority : Register.t;
  last_type : Register.t;
  counter : Register.t;
  (* Staging registers for the highest UIM (egress_port_updated and the
     other label contents of §8). *)
  uim_version : Register.t;
  uim_distance : Register.t;
  uim_egress : Register.t; (* egress_port_updated *)
  uim_notify : Register.t;
  uim_role : Register.t;
  uim_type : Register.t;
  uim_size : Register.t;
  ufm_sent : Register.t;
  cleaned : Register.t;
  chain_ok : Register.t;
  tagged_port : Register.t;
  tagged_version : Register.t;
  stamp_tag : Register.t;
  (* Abort plane: highest withdrawn version (§11 abort).  Staging at or
     below this floor is rejected, so late duplicate UIMs of an aborted
     update cannot resurrect it. *)
  withdrawn_version : Register.t;
  (* Per-port capacity accounting. *)
  port_capacity : Register.t;
  reserved : Register.t;
  waiters : Register.t;
}

let per_flow name = Register.create ~name ~width:16 ~size:Wire.flow_space
let per_port name ports = Register.create ~name ~width:24 ~size:(max 1 ports)

let create ~ports =
  {
    new_version = per_flow "new_version";
    new_distance = per_flow "new_distance";
    old_version = per_flow "old_version";
    old_distance = per_flow "old_distance";
    egress_port = per_flow "egress_port";
    notify_port = per_flow "notify_port";
    flow_size = per_flow "flow_size";
    flow_priority = per_flow "flow_priority";
    last_type = per_flow "t";
    counter = per_flow "counter";
    uim_version = per_flow "uim_version";
    uim_distance = per_flow "uim_distance";
    uim_egress = per_flow "egress_port_updated";
    uim_notify = per_flow "uim_notify";
    uim_role = per_flow "uim_role";
    uim_type = per_flow "uim_type";
    uim_size = per_flow "uim_size";
    ufm_sent = per_flow "ufm_sent";
    cleaned = per_flow "cleaned";
    chain_ok = per_flow "chain_ok";
    tagged_port = per_flow "tagged_port";
    tagged_version = per_flow "tagged_version";
    stamp_tag = per_flow "stamp_tag";
    withdrawn_version = per_flow "withdrawn_version";
    port_capacity = per_port "port_capacity" ports;
    reserved = per_port "reserved" ports;
    waiters = per_port "waiters" ports;
  }

let registers t =
  [
    t.new_version; t.new_distance; t.old_version; t.old_distance; t.egress_port;
    t.notify_port; t.flow_size; t.flow_priority; t.last_type; t.counter;
    t.uim_version; t.uim_distance; t.uim_egress; t.uim_notify; t.uim_role;
    t.uim_type; t.uim_size; t.ufm_sent; t.cleaned; t.chain_ok; t.tagged_port; t.tagged_version;
    t.stamp_tag; t.withdrawn_version; t.port_capacity; t.reserved; t.waiters;
  ]

(* A restarted switch comes back with factory-zero registers: every
   committed rule, staged indication and reservation is gone (§11). *)
let reset t = List.iter Register.clear (registers t)

(* Content digest of every register cell, for the model checker's
   state-fingerprint pruning.  A hand-rolled multiplicative mix rather
   than [Hashtbl.hash], which only samples a bounded prefix of large
   arrays and would alias distinct UIB states. *)
let fingerprint t =
  List.fold_left
    (fun acc r ->
      Array.fold_left (fun h cell -> (h * 31) lxor cell) (acc * 131) (Register.dump r))
    17 (registers t)

(* Freshly created registers are all zero, but "no rule" must read as
   [Wire.port_none]; we keep the raw cells zero-initialized and translate
   port reads instead: a 0 version means "never configured", under which
   the egress port is reported as none. *)

let ver_cur t fid = Register.read t.new_version fid
let dist_cur t fid = Register.read t.new_distance fid
let ver_prev t fid = Register.read t.old_version fid
let dist_prev t fid = Register.read t.old_distance fid

let egress_port t fid =
  if ver_cur t fid = 0 then Wire.port_none else Register.read t.egress_port fid

let notify_port t fid =
  if ver_cur t fid = 0 then Wire.port_none else Register.read t.notify_port fid

let flow_size t fid = Register.read t.flow_size fid
let flow_priority t fid = Register.read t.flow_priority fid
let last_type t fid = Register.read t.last_type fid
let counter t fid = Register.read t.counter fid

let set_ver_cur t fid v = Register.write t.new_version fid v
let set_dist_cur t fid v = Register.write t.new_distance fid v
let set_ver_prev t fid v = Register.write t.old_version fid v
let set_dist_prev t fid v = Register.write t.old_distance fid v
let set_egress_port t fid v = Register.write t.egress_port fid v
let set_notify_port t fid v = Register.write t.notify_port fid v
let set_flow_size t fid v = Register.write t.flow_size fid v
let set_flow_priority t fid v = Register.write t.flow_priority fid v
let set_last_type t fid v = Register.write t.last_type fid v
let set_counter t fid v = Register.write t.counter fid v

let uim_version t fid = Register.read t.uim_version fid
let uim_distance t fid = Register.read t.uim_distance fid
let uim_egress t fid = Register.read t.uim_egress fid
let uim_notify t fid = Register.read t.uim_notify fid
let uim_role t fid = Register.read t.uim_role fid
let uim_type t fid = Register.read t.uim_type fid
let uim_size t fid = Register.read t.uim_size fid

let withdrawn_version t fid = Register.read t.withdrawn_version fid

(* Raise the withdraw floor to [version] (never lowered); no-op when the
   version already committed.  Returns [true] when staged state for
   exactly this version was present and is now dead. *)
let withdraw t fid ~version =
  if ver_cur t fid >= version then false
  else begin
    let had_staged = uim_version t fid = version in
    if version > withdrawn_version t fid then
      Register.write t.withdrawn_version fid version;
    had_staged
  end

let stage_uim t fid (c : Wire.control) =
  if c.version_new <= uim_version t fid || c.version_new <= withdrawn_version t fid
  then false
  else begin
    Register.write t.uim_version fid c.version_new;
    Register.write t.uim_distance fid c.dist_new;
    Register.write t.uim_egress fid c.egress_port;
    Register.write t.uim_notify fid c.notify_port;
    Register.write t.uim_role fid c.role;
    Register.write t.uim_type fid (Wire.update_type_to_int c.update_type);
    Register.write t.uim_size fid c.flow_size;
    true
  end

let port_capacity t port = Register.read t.port_capacity port
let set_port_capacity t port v = Register.write t.port_capacity port v
let reserved t port = Register.read t.reserved port
let reserve t port amount = Register.write t.reserved port (reserved t port + amount)

let release t port amount =
  Register.write t.reserved port (max 0 (reserved t port - amount))

let remaining t port = port_capacity t port - reserved t port
let waiters t port = Register.read t.waiters port
let add_waiter t port = Register.write t.waiters port (waiters t port + 1)
let remove_waiter t port = Register.write t.waiters port (max 0 (waiters t port - 1))

let chain_ok t fid = Register.read t.chain_ok fid
let set_chain_ok t fid v = Register.write t.chain_ok fid v
let tagged_port t fid = Register.read t.tagged_port fid
let tagged_version t fid = Register.read t.tagged_version fid
let stamp_tag t fid = Register.read t.stamp_tag fid
let set_tagged_port t fid v = Register.write t.tagged_port fid v
let set_tagged_version t fid v = Register.write t.tagged_version fid v
let set_stamp_tag t fid v = Register.write t.stamp_tag fid v

let cleaned t fid = Register.read t.cleaned fid
let set_cleaned t fid v = Register.write t.cleaned fid v
let ufm_sent t fid = Register.read t.ufm_sent fid
let set_ufm_sent t fid v = Register.write t.ufm_sent fid v
