(* Unit and property tests for the graph substrate. *)

module Graph = Topo.Graph

let diamond () =
  (* 0 - 1 - 3 with a slower 0 - 2 - 3 alternative. *)
  let g = Graph.create 4 in
  Graph.add_edge g ~u:0 ~v:1 ~latency_ms:1.0 ~capacity:10.0;
  Graph.add_edge g ~u:1 ~v:3 ~latency_ms:1.0 ~capacity:10.0;
  Graph.add_edge g ~u:0 ~v:2 ~latency_ms:2.0 ~capacity:10.0;
  Graph.add_edge g ~u:2 ~v:3 ~latency_ms:2.0 ~capacity:10.0;
  g

let test_basic_structure () =
  let g = diamond () in
  Alcotest.(check int) "nodes" 4 (Graph.node_count g);
  Alcotest.(check int) "edges" 4 (Graph.edge_count g);
  Alcotest.(check bool) "edge exists" true (Graph.has_edge g 0 1);
  Alcotest.(check bool) "edge symmetric" true (Graph.has_edge g 1 0);
  Alcotest.(check bool) "no edge" false (Graph.has_edge g 0 3);
  Alcotest.(check (float 0.001)) "latency" 2.0 (Graph.latency g 2 3);
  Alcotest.(check bool) "connected" true (Graph.is_connected g)

let test_rejects_invalid_edges () =
  let g = diamond () in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self loop")
    (fun () -> Graph.add_edge g ~u:1 ~v:1 ~latency_ms:1.0 ~capacity:1.0);
  Alcotest.check_raises "duplicate" (Invalid_argument "Graph.add_edge: duplicate edge")
    (fun () -> Graph.add_edge g ~u:0 ~v:1 ~latency_ms:1.0 ~capacity:1.0)

let test_shortest_path () =
  let g = diamond () in
  Alcotest.(check (option (list int))) "fast branch" (Some [ 0; 1; 3 ])
    (Graph.shortest_path g ~src:0 ~dst:3);
  Alcotest.(check (option (list int))) "self" (Some [ 2 ]) (Graph.shortest_path g ~src:2 ~dst:2)

let test_unreachable () =
  let g = Graph.create 3 in
  Graph.add_edge g ~u:0 ~v:1 ~latency_ms:1.0 ~capacity:1.0;
  Alcotest.(check (option (list int))) "unreachable" None (Graph.shortest_path g ~src:0 ~dst:2);
  Alcotest.(check bool) "disconnected" false (Graph.is_connected g)

let test_k_shortest () =
  let g = diamond () in
  let paths = Graph.k_shortest_paths g ~src:0 ~dst:3 ~k:3 in
  Alcotest.(check int) "two distinct paths" 2 (List.length paths);
  Alcotest.(check (list (list int))) "ordered by latency" [ [ 0; 1; 3 ]; [ 0; 2; 3 ] ] paths

let test_k_shortest_on_wans () =
  List.iter
    (fun topo ->
      let g = topo.Topo.Topologies.graph in
      let paths = Graph.k_shortest_paths g ~src:0 ~dst:(Graph.node_count g - 1) ~k:4 in
      Alcotest.(check bool)
        (topo.Topo.Topologies.name ^ ": at least 2 paths")
        true
        (List.length paths >= 2);
      (* All paths valid, simple and strictly sorted by latency. *)
      List.iter
        (fun p -> Alcotest.(check bool) "valid path" true (Graph.path_is_valid g p))
        paths;
      let costs = List.map (Graph.path_latency g) paths in
      let rec sorted = function
        | a :: (b :: _ as rest) -> a <= b && sorted rest
        | _ -> true
      in
      Alcotest.(check bool) "sorted" true (sorted costs);
      let distinct = List.sort_uniq compare paths in
      Alcotest.(check int) "distinct" (List.length paths) (List.length distinct))
    [ Topo.Topologies.b4 (); Topo.Topologies.internet2 () ]

let test_hop_distances () =
  let g = diamond () in
  let d = Graph.hop_distances g ~dst:3 in
  Alcotest.(check (array int)) "hops" [| 2; 1; 1; 0 |] d

let test_centroid_is_valid_node () =
  List.iter
    (fun topo ->
      let g = topo.Topo.Topologies.graph in
      let c = Graph.centroid g in
      Alcotest.(check bool) "in range" true (c >= 0 && c < Graph.node_count g))
    [ Topo.Topologies.b4 (); Topo.Topologies.internet2 (); Topo.Topologies.fig1 () ]

let test_set_capacity () =
  let g = diamond () in
  Graph.set_capacity g 0 1 42.0;
  Alcotest.(check (float 0.001)) "override" 42.0 (Graph.capacity g 0 1);
  Alcotest.(check (float 0.001)) "symmetric" 42.0 (Graph.capacity g 1 0);
  Alcotest.(check (float 0.001)) "others untouched" 10.0 (Graph.capacity g 0 2)

(* Random connected graph generator for property tests. *)
let random_graph_gen =
  QCheck.Gen.(
    sized_size (int_range 4 12) (fun n ->
        let* extra = int_bound (n * 2) in
        let* seed = int_bound 1_000_000 in
        return (n, extra, seed)))

let build_random (n, extra, seed) =
  let rng = Random.State.make [| seed |] in
  let g = Graph.create n in
  (* Random spanning tree first, then extra chords. *)
  for v = 1 to n - 1 do
    let u = Random.State.int rng v in
    Graph.add_edge g ~u ~v ~latency_ms:(1.0 +. Random.State.float rng 9.0) ~capacity:10.0
  done;
  for _ = 1 to extra do
    let u = Random.State.int rng n and v = Random.State.int rng n in
    if u <> v && not (Graph.has_edge g u v) then
      Graph.add_edge g ~u ~v ~latency_ms:(1.0 +. Random.State.float rng 9.0) ~capacity:10.0
  done;
  g

let random_graph_arb = QCheck.make ~print:(fun (n, e, s) -> Printf.sprintf "(n=%d,e=%d,seed=%d)" n e s) random_graph_gen

let prop_shortest_path_valid =
  QCheck.Test.make ~name:"shortest paths are valid and minimal vs BFS reachability" ~count:100
    random_graph_arb
    (fun spec ->
      let g = build_random spec in
      let n = Graph.node_count g in
      let ok = ref true in
      for src = 0 to n - 1 do
        for dst = 0 to n - 1 do
          match Graph.shortest_path g ~src ~dst with
          | Some p ->
            if not (Graph.path_is_valid g p) then ok := false;
            if List.hd p <> src then ok := false;
            if List.nth p (List.length p - 1) <> dst then ok := false
          | None -> if Graph.is_connected g then ok := false
        done
      done;
      !ok)

let prop_yen_paths_simple_and_sorted =
  QCheck.Test.make ~name:"yen paths are simple, distinct and sorted" ~count:60 random_graph_arb
    (fun spec ->
      let g = build_random spec in
      let n = Graph.node_count g in
      let paths = Graph.k_shortest_paths g ~src:0 ~dst:(n - 1) ~k:4 in
      let costs = List.map (Graph.path_latency g) paths in
      let rec sorted = function
        | a :: (b :: _ as rest) -> a <= b && sorted rest
        | _ -> true
      in
      List.for_all (Graph.path_is_valid g) paths
      && sorted costs
      && List.length (List.sort_uniq compare paths) = List.length paths)

let prop_first_yen_is_shortest =
  QCheck.Test.make ~name:"first yen path equals dijkstra" ~count:60 random_graph_arb
    (fun spec ->
      let g = build_random spec in
      let n = Graph.node_count g in
      match (Graph.k_shortest_paths g ~src:0 ~dst:(n - 1) ~k:2, Graph.shortest_path g ~src:0 ~dst:(n - 1)) with
      | first :: _, Some sp ->
        Graph.path_latency g first = Graph.path_latency g sp
      | [], None -> true
      | _ -> false)

let suite =
  [
    Alcotest.test_case "basic structure" `Quick test_basic_structure;
    Alcotest.test_case "invalid edges rejected" `Quick test_rejects_invalid_edges;
    Alcotest.test_case "shortest path" `Quick test_shortest_path;
    Alcotest.test_case "unreachable destination" `Quick test_unreachable;
    Alcotest.test_case "k-shortest on diamond" `Quick test_k_shortest;
    Alcotest.test_case "k-shortest on WANs" `Quick test_k_shortest_on_wans;
    Alcotest.test_case "hop distances" `Quick test_hop_distances;
    Alcotest.test_case "centroid valid" `Quick test_centroid_is_valid_node;
    Alcotest.test_case "capacity override" `Quick test_set_capacity;
    QCheck_alcotest.to_alcotest prop_shortest_path_valid;
    QCheck_alcotest.to_alcotest prop_yen_paths_simple_and_sorted;
    QCheck_alcotest.to_alcotest prop_first_yen_is_shortest;
  ]
