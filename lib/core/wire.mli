(** Wire formats of the P4Update protocol.

    Three header schemas ride behind a small ethernet-like base header:
    the control header [p4u] carrying FRM/UIM/UNM/UFM (§6), and the [data]
    header for flow traffic.  Records mirror the header fields so the rest
    of the code never touches raw field names. *)

(** {2 Constants} *)

val etype_control : int
val etype_data : int

val flow_space : int
(** Number of distinct flow ids (register array size), 1024. *)

val port_none : int
(** "no rule" egress-port value *)

val port_local : int
(** "deliver locally" egress-port value (flow egress) *)

(** {2 Message kinds (msg_type field)} *)

type msg_kind =
  | Frm
  | Uim
  | Unm
  | Ufm
  | Cln  (** rule-cleanup packet (§11) *)
  | Wdm
      (** withdraw: controller aborts an update; path switches discard the
          staged (uncommitted) state of [version_new].  Safe because old
          rules persist until final verification (DESIGN §11). *)

val msg_kind_to_int : msg_kind -> int
val msg_kind_of_int : int -> msg_kind option

(** {2 Update types} *)

type update_type = Sl | Dl

val update_type_to_int : update_type -> int
val update_type_of_int : int -> update_type option

(** {2 Node roles within an update (bit flags in the role field)} *)

val role_plain : int
val role_flow_egress : int
val role_flow_ingress : int
val role_segment_egress : int
val role_gateway : int

val role_committed : int
(** set in UNMs sent by a node that has already committed the update's
    version (used by the Appendix C consecutive-DL extension) *)

val role_two_phase : int
(** UIM flag: install into the tagged rule bank (2-phase commit, §11);
    forwarding only switches when the ingress starts stamping the new
    tag, giving Reitblatt-style per-packet consistency *)

(** {2 UFM status codes (layer field of an UFM)} *)

val ufm_success : int
val ufm_alarm_distance : int
val ufm_alarm_stale : int
val ufm_alarm_wait_budget : int
val ufm_alarm_timeout : int

(** {2 Schemas} *)

val eth_schema : P4rt.Header.schema
val p4u_schema : P4rt.Header.schema
val data_schema : P4rt.Header.schema

(** Parse graph for the whole protocol (start: eth; select on etype). *)
val parser : P4rt.Parser.t

(** {2 Control message view} *)

type control = {
  kind : msg_kind;
  flow_id : int;
  version_new : int;
  version_old : int;
  dist_new : int;
  dist_old : int;
  update_type : update_type;
  layer : int;
  counter : int;
  flow_size : int;  (** centi-units of link capacity *)
  egress_port : int;
  notify_port : int;
  role : int;
  src_node : int;
}

(** All-zero SL control record with the given kind; fill what you need. *)
val control_default : msg_kind -> control

val control_to_packet : control -> P4rt.Packet.t
val control_of_packet : P4rt.Packet.t -> control option

(** {2 Data packet view} *)

type data = {
  d_flow_id : int;
  seq : int;
  ttl : int;
  origin : int;
  dst : int;  (** destination node id (what a real header's dst address encodes) *)
  tag : int;  (** 2-phase-commit version tag stamped by the ingress (0 = untagged) *)
  d_ts : int;
      (** ingress timestamp in simulated µs, stamped at injection (0 = unset);
          32 bits cover ~71 min of simulated time *)
}

val data_to_packet : data -> P4rt.Packet.t
val data_of_packet : P4rt.Packet.t -> data option

(** Serialize helpers (deparse to bytes).  On the default path these go
    through {!control_to_packet} + [Packet.serialize]; with the fast
    path enabled (see {!set_fast_path}) they encode byte-identically via
    direct stores into a pooled buffer. *)
val control_to_bytes : control -> Bytes.t
val data_to_bytes : data -> Bytes.t

(** Parse raw bytes with {!parser} (None on parse failure). *)
val packet_of_bytes : Bytes.t -> P4rt.Packet.t option

(** {2 Fast wire path}

    Both wire formats are fully byte-aligned, so frames have fixed
    sizes (control 28 bytes, data 22) and fixed field offsets.  With
    the fast path enabled, {!control_to_bytes} / {!data_to_bytes}
    encode with direct byte stores into pooled buffers,
    {!control_of_bytes} / {!data_of_bytes} decode without running the
    parse graph, and [P4rt.Header] switches its byte-aligned
    [emit]/[extract] loops on — every wire image and decode verdict is
    identical to the reference path (enforced by a qcheck equivalence
    property), only the cost changes.  Off by default: pinned chaos
    hashes and mc fingerprints are recorded against the reference path,
    and the bench kernel A/B uses it as the baseline side.
    [Harness.World.make] enables it together with the calendar
    kernel. *)

val control_bytes_len : int
(** Exact control frame size, 28. *)

val data_bytes_len : int
(** Exact data frame size, 22. *)

val set_fast_path : bool -> unit
val fast_path_enabled : unit -> bool

(** [control_of_bytes b] / [data_of_bytes b]: decode on whichever path
    is enabled; [None] on short frames, foreign etypes or invalid
    msg_type / update_type, exactly like [packet_of_bytes] +
    [*_of_packet]. *)
val control_of_bytes : Bytes.t -> control option

val data_of_bytes : Bytes.t -> data option

(** Message kind of a valid control frame (for
    [Netsim.set_control_classifier]) without materializing the record;
    same verdicts as the full-parse classifier on any byte string. *)
val control_kind_of_bytes : Bytes.t -> int option

(** Reference codecs, unconditionally on the boxed Packet/Header path —
    the baseline side of the bench kernel A/B and the oracle for the
    codec-equivalence qcheck. *)
val control_to_bytes_boxed : control -> Bytes.t

val data_to_bytes_boxed : data -> Bytes.t

(** [release_frame b] returns a pooled frame to its pool (no-op when
    the fast path is off or [b] is not a pooled size).  Only sound once
    no delivery of [b] is outstanding — senders pass it to [Netsim]'s
    [?recycle] hooks, whose per-send reference count calls it after the
    last delivery completes. *)
val release_frame : Bytes.t -> unit

(** [recycle_thunk b] is [Some (fun () -> release_frame b)] when the
    fast path is on, [None] otherwise — the value to pass straight to
    [Netsim]'s [?recycle] arguments. *)
val recycle_thunk : Bytes.t -> (unit -> unit) option

(** Number of frames currently parked in the pools (diagnostic). *)
val pooled_frames : unit -> int

val pp_control : Format.formatter -> control -> unit

(** {2 Trace anchor keys}

    The wire format cannot carry trace span ids, so the instrumentation in
    {!Controller} and {!Switch} hands spans across messages through the
    sink's anchor table under these keys (see [Obs.Trace]). *)

val span_key_update : flow_id:int -> version:int -> string
val span_key_uim : flow_id:int -> version:int -> node:int -> string
val span_key_unm : flow_id:int -> version:int -> node:int -> string
val span_key_ufm : flow_id:int -> version:int -> node:int -> string
