(** Scale engine (§9-style stress): thousands of concurrent flow updates
    over a Topology Zoo WAN, driven by a Poisson arrival process on the
    discrete-event kernel.

    Each arrival burst rotates a set of distinct active flows onto their
    next precomputed alternative path, prepares the burst through
    {!P4update.Controller.prepare_batch} (shared traversal state) and
    pushes it; a fraction of bursts churns the flow population.
    Completion times are captured per update via an [on_report] hook, and
    Thm. 1–4 invariant probes run on a sampled subset of bursts.  All
    randomness comes from the world's simulation RNG, so the workload and
    event schedule are a pure function of [Run_config.seed]. *)

type workload = {
  wl_updates : int;           (** stop admitting bursts after this many updates *)
  wl_flows : int;             (** concurrent flow population size *)
  wl_arrival_mean_ms : float; (** Poisson mean between bursts *)
  wl_burst : int;             (** updates per burst (distinct flows) *)
  wl_churn : float;           (** per-burst probability of one flow churning *)
  wl_probe_every : int;       (** invariant probe every n bursts; 0 disables *)
  wl_flow_size : int;         (** per-flow size (centi-units) *)
  wl_horizon_ms : float;      (** simulation bound *)
}

(** 1000 updates over 200 flows, 5 ms mean inter-burst, bursts of 8,
    5% churn, probe every 25 bursts, size-1 flows, 300 s horizon. *)
val default_workload : workload

(** Rolling SLO window length (simulated ms) when [Run_config.tick_ms]
    is not set. *)
val default_tick_ms : float

type result = {
  sr_topology : string;
  sr_updates_pushed : int;
  sr_updates_completed : int;
  sr_bursts : int;
  sr_underfilled : int;
      (** bursts clamped below [wl_burst] because the distinct-flow pick
          loop exhausted its tries (tiny populations) *)
  sr_churned : int;
  sr_probes : int;
  sr_completion_ms : float list; (** one sample per completed update *)
  sr_p50_ms : float;
  sr_p99_ms : float;
  sr_sim_ms : float;             (** simulated time at drain *)
  sr_events : int;
  sr_events_per_s : float;       (** kernel dispatch rate (monotonic wall clock) *)
  sr_updates_per_s : float;      (** completed updates per wall second *)
  sr_prep_per_s : float;         (** controller preparation throughput *)
  sr_violations : Invariants.violation list;
  sr_series : Obs.Timeseries.window list;
      (** rolling SLO windows (one per [Run_config.tick_ms], default 1 s
          simulated): update-latency p50/p99, push/completion rates,
          in-flight updates, heap footprint *)
}

(** Ride-along observation hooks (the traffic engine).  The factory given
    to {!run} is called once the initial flow population is admitted —
    enumerate [World.flows] there — and the returned hooks fire as the
    workload unfolds.  [h_pushed] fires right after each
    [Controller.push], when the controller's flow record already shows
    the new version and path; [h_admitted] fires for each churn
    admission. *)
type hooks = {
  h_admitted : flow_id:int -> unit;
  h_pushed : flow_id:int -> version:int -> unit;
}

val no_hooks : hooks

(** [alt_paths g ~src ~dst] is the alternative-path set a flow of the
    workload rotates over: [None] unless at least {e two} distinct
    k-shortest paths exist (a single-path flow would only generate no-op
    updates). *)
val alt_paths : Topo.Graph.t -> src:int -> dst:int -> int list array option

(** [retime_prep w requests] measures [prepare_batch] throughput
    (updates/s) for [requests] without touching [w]'s control plane: the
    timing loops run against throwaway clone worlds.  At shards=1 one
    clone carries all the flows; at shards>1 each shard gets its own
    clone carrying {e only} the Flow DB slice it owns (never the other
    replicas' slices), its prep loop is timed in isolation, and the
    result is the sum of per-replica rates — the sustained capacity of k
    controllers each running on its own machine. *)
val retime_prep : World.t -> (int * int list) list -> float

(** [run ?workload ?hooks cfg topo] executes the workload on [topo],
    seeded from [cfg.Run_config.seed].  Deterministic except for the
    wall-clock throughput fields. *)
val run :
  ?workload:workload -> ?hooks:(World.t -> hooks) -> Run_config.t ->
  Topo.Topologies.t -> result

val pp : Format.formatter -> result -> unit
