(** Forwarding-state inspection: walk the data-plane state of a set of
    switches to verify the consistency properties (blackhole, loop and
    congestion freedom) at any instant of a simulation. *)

type outcome =
  | Reaches_egress of int list  (** the traversed path, ingress included *)
  | Blackhole of int            (** first node without a matching rule *)
  | Loop of int list            (** the repeating node cycle *)

(** [trace net switches ~flow_id ~src] follows the committed forwarding
    rules from [src]. *)
val trace :
  Netsim.t -> P4update.Switch.t array -> flow_id:int -> src:int -> outcome

(** [is_consistent outcome] is true only for [Reaches_egress]. *)
val is_consistent : outcome -> bool

(** [link_violations net switches] returns every directed link whose
    reserved load exceeds its capacity, as
    [(node, port, reserved, capacity)]. *)
val link_violations :
  Netsim.t -> P4update.Switch.t array -> (int * int * int * int) list

val pp_outcome : Format.formatter -> outcome -> unit
