test/test_dessim.ml: Alcotest Dessim Float Fun List QCheck QCheck_alcotest
