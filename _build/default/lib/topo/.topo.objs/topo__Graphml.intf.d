lib/topo/graphml.mli: Topologies
