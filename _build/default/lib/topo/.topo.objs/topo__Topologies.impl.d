lib/topo/topologies.ml: Array Float Graph List Printf
