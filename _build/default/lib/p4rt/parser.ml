type next =
  | Accept
  | Goto of string
  | Select of string * (int * string) list * next

type state = {
  state_name : string;
  extracts : Header.schema option;
  transition : next;
}

type t = { states : (string * state) list }

exception Parse_error of string

let rec targets_of = function
  | Accept -> []
  | Goto s -> [ s ]
  | Select (_, cases, default) -> List.map snd cases @ targets_of default

let create states =
  if not (List.exists (fun s -> s.state_name = "start") states) then
    invalid_arg "Parser.create: no start state";
  let known name = List.exists (fun s -> s.state_name = name) states in
  List.iter
    (fun s ->
      List.iter
        (fun target ->
          if not (known target) then
            invalid_arg
              (Printf.sprintf "Parser.create: state %s targets unknown state %s" s.state_name
                 target))
        (targets_of s.transition))
    states;
  { states = List.map (fun s -> (s.state_name, s)) states }

let run parser bytes =
  let rec step state_name offset headers visits =
    if visits > 64 then raise (Parse_error "state visit budget exceeded");
    let state =
      match List.assoc_opt state_name parser.states with
      | Some s -> s
      | None -> raise (Parse_error ("unknown state " ^ state_name))
    in
    let extracted, offset =
      match state.extracts with
      | None -> (None, offset)
      | Some schema ->
        (try
           let inst, next = Header.extract schema bytes offset in
           (Some inst, next)
         with Invalid_argument msg -> raise (Parse_error msg))
    in
    let headers = match extracted with None -> headers | Some h -> h :: headers in
    let rec decide = function
      | Accept -> (None, offset, headers)
      | Goto s -> (Some s, offset, headers)
      | Select (field, cases, default) ->
        let inst =
          match extracted with
          | Some h -> h
          | None -> raise (Parse_error "select without extraction")
        in
        let v = Header.get inst field in
        (match List.assoc_opt v cases with
         | Some target -> (Some target, offset, headers)
         | None -> decide default)
    in
    match decide state.transition with
    | None, offset, headers -> (offset, headers)
    | Some target, offset, headers -> step target offset headers (visits + 1)
  in
  let offset, headers = step "start" 0 [] 0 in
  let payload = Bytes.sub bytes offset (Bytes.length bytes - offset) in
  Packet.make ~payload (List.rev headers)
