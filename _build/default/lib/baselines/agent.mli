(** Shared switch-agent substrate for the two baselines.

    Central and ez-Segway run as OpenFlow-style switches with a local
    software agent (exactly how the paper deploys them, §9.1): a plain
    flow table, TTL-decrementing data forwarding and per-port capacity
    accounting.  Rule installation pays the platform's rule-update delay.
    Unlike the P4Update switch, agents have no verification — they install
    whatever they are told, which is the behaviour §4.1 demonstrates. *)

type t

type stats = {
  mutable delivered : int;
  mutable forwarded : int;
  mutable dropped_no_rule : int;
  mutable dropped_ttl : int;
  mutable commits : int;
}

(** [create net ~node ~on_message] builds the agent; control messages
    (anything that is not a data packet) are handed to [on_message]. *)
val create :
  Netsim.t ->
  node:int ->
  on_message:(t -> from_port:int -> P4update.Wire.control -> unit) ->
  t

val node : t -> int
val net : t -> Netsim.t
val stats : t -> stats

(** {2 Forwarding state} *)

val port_of : t -> flow_id:int -> int
(** [P4update.Wire.port_none] when the flow has no rule *)

(** [set_rule t ~flow_id ~port] installs immediately (initial state). *)
val set_rule : t -> flow_id:int -> port:int -> unit

(** [install t ~flow_id ~port ~size ~k] installs after the rule-update
    delay, moving the capacity reservation, then runs [k ()].  Capacity is
    {e not} checked — the caller gates on it (or doesn't, like Central).
    When the rule leaves its old link, a cleanup packet (§11) is sent down
    that link so abandoned nodes free their state. *)
val install : t -> flow_id:int -> port:int -> size:int -> k:(unit -> unit) -> unit

(** [delete_rule t ~flow_id] removes the rule and frees its reservation,
    forwarding the cleanup along the abandoned path.  [version] guards the
    race with a concurrent update: agents that saw a command at least as
    new ignore the cleanup. *)
val handle_cleanup : t -> flow_id:int -> version:int -> unit

(** [note_version t ~flow_id ~version] records the newest update command
    this agent has seen for the flow. *)
val note_version : t -> flow_id:int -> version:int -> unit

val last_version : t -> flow_id:int -> int

(** {2 Capacity accounting} *)

val reserved : t -> port:int -> int
val capacity : t -> port:int -> int
val remaining : t -> port:int -> int
val reserve_initial : t -> flow_id:int -> port:int -> size:int -> unit

(** {2 Messaging} *)

val send : t -> port:int -> P4update.Wire.control -> unit
val send_to_controller : t -> P4update.Wire.control -> unit

(** [inject_data t data] host-side packet injection. *)
val inject_data : t -> P4update.Wire.data -> unit

(** [on_commit t f] observer for rule commits. *)
val on_commit : t -> (flow_id:int -> time:float -> unit) -> unit
