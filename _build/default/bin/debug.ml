open P4update
let () =
  let topo = Topo.Topologies.fig1 () in
  let world = Harness.World.make ~seed:21 topo in
  Array.iter Switch.enable_consecutive_dl world.switches;
  Controller.set_allow_consecutive_dl world.controller true;
  let flow = Harness.World.install_flow world ~src:0 ~dst:7 ~size:100
      ~path:Topo.Topologies.fig1_old_path in
  let configs = [ Topo.Topologies.fig1_new_path; Topo.Topologies.fig1_old_path;
                  Topo.Topologies.fig1_new_path ] in
  List.iteri (fun i new_path ->
      Dessim.Sim.schedule world.sim ~delay:(float_of_int i *. 5.0) (fun () ->
          ignore (Controller.update_flow world.controller ~flow_id:flow.flow_id ~new_path ())))
    configs;
  Array.iter (fun sw -> Switch.on_commit sw (fun ~flow_id:_ ~version ~time ->
      let uib = Switch.uib sw in
      Printf.printf "t=%7.2f commit v%d ver=%d -> %s (label=%d)\n" time (Switch.node sw) version
        (match Netsim.neighbor_of_port world.net ~node:(Switch.node sw)
                 ~port:(Uib.egress_port uib flow.flow_id) with
         | Some nb -> string_of_int nb | None -> "local")
        (Uib.dist_prev uib flow.flow_id))) world.switches;
  let stop = ref false in
  while (not !stop) && Dessim.Sim.step world.sim do
    match Harness.Fwdcheck.trace world.net world.switches ~flow_id:flow.flow_id ~src:0 with
    | Harness.Fwdcheck.Reaches_egress _ -> ()
    | o ->
      Format.printf "VIOLATION at t=%.2f: %a@." (Dessim.Sim.now world.sim)
        Harness.Fwdcheck.pp_outcome o;
      for n = 0 to 7 do
        let uib = Switch.uib world.switches.(n) in
        Printf.printf "  v%d: ver=%d rule->%s label=%d lastT=%d\n" n
          (Uib.ver_cur uib flow.flow_id)
          (match Netsim.neighbor_of_port world.net ~node:n
                   ~port:(Uib.egress_port uib flow.flow_id) with
           | Some nb -> string_of_int nb
           | None -> if Uib.egress_port uib flow.flow_id = Wire.port_local then "local" else "none")
          (Uib.dist_prev uib flow.flow_id) (Uib.last_type uib flow.flow_id)
      done;
      stop := true
  done
