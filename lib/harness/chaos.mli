(** Seeded chaos harness (§11): random fault schedules on both planes,
    scheduled link/node failures, invariant probes and a convergence
    verdict, reproducible from a single seed.

    A run draws a small workload (old path installed, an update to an
    alternative path scheduled mid-window), then injects stochastic
    faults — drop, delay, reorder-via-delay, corrupt, duplicate — on the
    data plane and the control channel for the duration of the fault
    window, plus up to two link/node failures (each restored within the
    window).  Every [probe_interval_ms] the forwarding state of every
    flow is checked against the Thm. 1–4 invariants:

    - no loop, ever;
    - no blackhole at a node that never failed;
    - no over-capacity link;
    - per-switch committed versions strictly increase (reset only by a
      switch restart).

    Corrupted control-typed frames are dropped rather than delivered
    (the Ethernet-FCS model); data frames get an actual bit flip.

    The same (scenario, seed, config) reproduces the same run, byte for
    byte ([r_trace_hash] is a digest of every data-plane delivery).  The
    report also contains the fault-free baseline of the same seed for a
    one-line degradation summary ({!report_line}). *)

type scenario = Fig1 | B4 | Fat_tree

val scenario_name : scenario -> string
val scenario_of_string : string -> scenario option
val all_scenarios : scenario list

type config = {
  flows : int;                  (** workload size (fig1 always includes the Fig. 1 flow) *)
  fault_window_ms : float;      (** faults and failures stop after this time *)
  horizon_ms : float;           (** simulation bound for the convergence verdict *)
  probe_interval_ms : float;
  data_fault_prob : float;      (** per-packet fault probability, data plane *)
  control_fault_prob : float;   (** per-message fault probability, control channel *)
  max_element_failures : int;   (** 0–n scheduled link/node failures *)
  recovery : bool;              (** arm {!P4update.Controller.enable_recovery} *)
  watchdog_ms : float;          (** switch watchdog timeout (§11) *)
}

val default_config : config

(** Re-export of {!Invariants.violation}: probes live in {!Invariants},
    shared with the property tests and the [lib/mc] model checker. *)
type violation = Invariants.violation = {
  v_time : float;
  v_flow : int;
  v_what : string;
}

type report = {
  r_scenario : scenario;
  r_seed : int;
  r_flows : int;
  r_converged : int;   (** flows whose final forwarding state matches the NIB *)
  r_baseline_converged : int;
  r_violations : violation list;
  r_retransmissions : int;
  r_reroutes : int;
  r_resyncs : int;
  r_aborts : int;    (** §11 aborts: updates withdrawn after exhausted recovery *)
  r_give_ups : int;  (** recovery loops that ran out of retries or deadline *)
  r_alarms : int;
  r_dropped_by_fault : int;
  r_dropped_by_failure : int;
  r_element_failures : int;
  r_completion_ms : float option;  (** last flow's success UFM, when all reported *)
  r_baseline_completion_ms : float option;
  r_trace_hash : int;              (** digest of all data-plane deliveries *)
  r_traffic : Traffic.summary option;
      (** per-packet audit of the degraded run, when probe traffic was
          requested.  Under faults, blackholes (dropped probes) and
          duplicate-induced loop classifications are expected — the
          interesting signal is [ts_mixed]. *)
}

(** All invariants held and every flow converged. *)
val ok : report -> bool

(** [run_cfg cfg ~scenario] is the {!Run_config} entry point: the seed,
    the trace sink and the fault plan (default {!Run_config.default_faults})
    all come from [cfg].  Executes the faulty run and its fault-free
    baseline (identical workload) and merges both into one report.  The
    sink is installed around the degraded run only (not the baseline);
    injected faults appear as ["fault.injected"] instants in category
    ["chaos"].  Tracing never perturbs the schedule, so the report —
    including [r_trace_hash] — is identical with or without a sink.

    [?traffic] additionally races sustained probe traffic (the
    {!Traffic} auditor) through the degraded run — not the baseline —
    and reports the per-packet audit in [r_traffic].  Runs without
    [?traffic] draw exactly the same schedule as before the auditor
    existed ([r_trace_hash] unchanged). *)
val run_cfg : ?traffic:Traffic.workload -> Run_config.t -> scenario:scenario -> report

(** Translation of a {!Run_config.fault_plan} into this harness's
    {!config} (field for field). *)
val config_of_plan : Run_config.fault_plan -> config

(** Deprecated scattered-argument wrapper around {!run_cfg}; prefer
    building a {!Run_config.t}.  Kept for existing call sites. *)
val run :
  ?config:config -> ?trace_sink:Obs.Trace.sink -> ?traffic:Traffic.workload ->
  ?shards:int -> scenario:scenario -> seed:int -> unit -> report

(** One-line degradation summary. *)
val report_line : report -> string

(** {2 Fault-model building blocks}

    Shared with the {!Soak} monitor so both harnesses apply the same
    Ethernet-FCS corruption model and the same fault distribution. *)

(** A frame whose payload parses as a {!P4update.Wire.control} message
    (control-typed even when it travels the data plane, like UNMs). *)
val is_control_frame : bytes -> bool

(** Draw a {!Netsim.fault} verdict from the shared distribution (40%
    drop / 30% delay / 15% corrupt / 15% duplicate among faulted
    packets).  [~downgrade_corrupt] turns Corrupt into Drop — the FCS
    model for control-typed frames. *)
val draw_verdict : Dessim.Sim.t -> downgrade_corrupt:bool -> Netsim.fault
