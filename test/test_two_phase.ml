(* Tests for the 2-phase-commit integration (§11): per-packet
   consistency via version tags stamped at the ingress. *)

open P4update

let setup () =
  let w = Harness.World.make (Topo.Topologies.fig1 ()) in
  let flow =
    Harness.World.install_flow w ~src:0 ~dst:7 ~size:100 ~path:Topo.Topologies.fig1_old_path
  in
  (w, flow)

let test_two_phase_converges () =
  let w, flow = setup () in
  let version =
    Controller.update_flow w.controller ~flow_id:flow.flow_id
      ~new_path:Topo.Topologies.fig1_new_path ~update_type:Wire.Sl ~two_phase:true ()
  in
  let _ = Harness.World.run w in
  (match Controller.completion_time w.controller ~flow_id:flow.flow_id ~version with
   | Some _ -> ()
   | None -> Alcotest.fail "two-phase update did not complete");
  (* Untagged state still points along the old path (phase 1 does not
     touch it)... *)
  (match Harness.Fwdcheck.trace w.net w.switches ~flow_id:flow.flow_id ~src:0 with
   | Harness.Fwdcheck.Reaches_egress path ->
     Alcotest.(check (list int)) "untagged bank keeps old path"
       Topo.Topologies.fig1_old_path path
   | o -> Alcotest.failf "broken: %a" Harness.Fwdcheck.pp_outcome o);
  (* ...but the ingress now stamps the new tag and every node has the
     tagged rule installed. *)
  let uib0 = Switch.uib w.switches.(0) in
  Alcotest.(check int) "ingress stamps new tag" version (Uib.stamp_tag uib0 flow.flow_id);
  List.iter
    (fun node ->
      let uib = Switch.uib w.switches.(node) in
      Alcotest.(check int)
        (Printf.sprintf "node %d tagged bank at version" node)
        version
        (Uib.tagged_version uib flow.flow_id))
    Topo.Topologies.fig1_new_path;
  (* A freshly injected packet takes the new path end to end. *)
  Switch.inject_data w.switches.(0)
    { Wire.d_flow_id = flow.flow_id; seq = 0; ttl = 64; origin = 0; dst = 7; tag = 0; d_ts = 0 };
  let _ = Harness.World.run w in
  Alcotest.(check int) "tagged packet delivered" 1
    (Switch.stats w.switches.(7)).Switch.delivered

(* Per-packet consistency (Reitblatt): every delivered packet traversed
   either entirely the old or entirely the new path, never a mix. *)
let test_per_packet_consistency () =
  let w, flow = setup () in
  (* Record, per sequence number, the nodes each packet visits. *)
  let visits : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  Netsim.on_delivery w.net (fun _time node _port bytes ->
      match Option.bind (Wire.packet_of_bytes bytes) Wire.data_of_packet with
      | Some d when d.Wire.d_flow_id = flow.flow_id ->
        let cell =
          match Hashtbl.find_opt visits d.Wire.seq with
          | Some c -> c
          | None ->
            let c = ref [ 0 ] (* injected at the ingress *) in
            Hashtbl.add visits d.Wire.seq c;
            c
        in
        cell := node :: !cell
      | Some _ | None -> ());
  let sent = ref 0 in
  let rec generator () =
    if Dessim.Sim.now w.sim < 400.0 then begin
      Switch.inject_data w.switches.(0)
        { Wire.d_flow_id = flow.flow_id; seq = !sent; ttl = 64; origin = 0; dst = 7; tag = 0; d_ts = 0 };
      incr sent;
      Dessim.Sim.schedule w.sim ~delay:3.0 generator
    end
  in
  generator ();
  Dessim.Sim.schedule w.sim ~delay:50.0 (fun () ->
      ignore
        (Controller.update_flow w.controller ~flow_id:flow.flow_id
           ~new_path:Topo.Topologies.fig1_new_path ~update_type:Wire.Sl ~two_phase:true ()));
  let _ = Harness.World.run w in
  Alcotest.(check bool) "packets sent" true (!sent > 50);
  let old_set = Topo.Topologies.fig1_old_path in
  let new_set = Topo.Topologies.fig1_new_path in
  Hashtbl.iter
    (fun seq cell ->
      let path = List.rev !cell in
      let all_in set = List.for_all (fun n -> List.mem n set) path in
      if not (all_in old_set || all_in new_set) then
        Alcotest.failf "packet %d took a mixed path [%s]" seq
          (String.concat ";" (List.map string_of_int path)))
    visits;
  (* The update actually flipped: late packets used the new path. *)
  let used_new = ref false in
  Hashtbl.iter
    (fun _ cell -> if List.mem 5 !cell then used_new := true)
    visits;
  Alcotest.(check bool) "some packets took the new path" true !used_new

let test_two_phase_keeps_consistency_under_reorder () =
  (* Even with reordered/duplicated control messages, tagged forwarding
     never mixes paths. *)
  let w, flow = setup () in
  let faulted = ref 0 in
  Netsim.set_data_fault w.net (fun ~from:_ ~to_:_ _ ->
      if !faulted < 3 && Random.State.int (Dessim.Sim.rng w.sim) 4 = 0 then begin
        incr faulted;
        Netsim.Duplicate
      end
      else Netsim.Deliver);
  let version =
    Controller.update_flow w.controller ~flow_id:flow.flow_id
      ~new_path:Topo.Topologies.fig1_new_path ~update_type:Wire.Sl ~two_phase:true ()
  in
  let _ = Harness.World.run w in
  match Controller.completion_time w.controller ~flow_id:flow.flow_id ~version with
  | Some _ -> ()
  | None -> Alcotest.fail "two-phase update did not complete under duplication"

let suite =
  [
    Alcotest.test_case "two-phase update converges" `Quick test_two_phase_converges;
    Alcotest.test_case "per-packet consistency during the flip" `Quick
      test_per_packet_consistency;
    Alcotest.test_case "two-phase under duplication" `Quick
      test_two_phase_keeps_consistency_under_reorder;
  ]
