(** One runner per evaluation artifact of the paper (see DESIGN.md §3).

    Every function is deterministic given its seed(s) and returns plain
    data; {!render} helpers turn results into the text the bench harness
    prints. *)

(** {2 Fig. 2 — inconsistent (reordered) updates} *)

type fig2_result = {
  f2_system : string;
  f2_sent : int;                       (** packets injected at v0 *)
  f2_v1_arrivals : (float * int) list; (** time, sequence id at v1 *)
  f2_v4_arrivals : (float * int) list; (** time, sequence id at v4 *)
  f2_duplicated : int;                 (** distinct seqs seen more than once at v1 *)
  f2_max_copies : int;                 (** worst-case copies of one seq at v1 *)
  f2_lost : int;                       (** seqs never delivered at v4 *)
}

(** [run_fig2 cfg] runs the §4.1 scenario for SL-P4Update and ez-Segway
    with [cfg.seed]. *)
val run_fig2 : Run_config.t -> fig2_result list

(** Deprecated wrapper around {!run_fig2}. *)
val fig2 : ?seed:int -> unit -> fig2_result list

(** {2 Fig. 4 — skip-ahead over an ongoing update} *)

type fig4_result = {
  f4_p4update : float list;  (** completion of U3, 30 runs *)
  f4_ez : float list;
  f4_speedup : float;        (** mean(ez) / mean(p4update) — paper: ≈ 4 *)
}

(** [run_fig4 cfg] runs [cfg.runs] seeded pairs. *)
val run_fig4 : Run_config.t -> fig4_result

(** Deprecated wrapper around {!run_fig4} ([Scenarios.runs] pairs). *)
val fig4 : unit -> fig4_result

(** {2 Fig. 7 — total update time CDFs} *)

type fig7_scenario = {
  f7_id : string;       (** "7a" .. "7f" *)
  f7_title : string;
  f7_setup : Scenarios.setup;
  f7_multi : bool;
}

val fig7_scenarios : unit -> fig7_scenario list

type fig7_result = {
  f7_scenario : fig7_scenario;
  f7_samples : (Scenarios.system * float list) list;
}

(** [run_fig7 cfg scenario] runs all three systems, [cfg.runs] seeds
    each. *)
val run_fig7 : Run_config.t -> fig7_scenario -> fig7_result

(** Deprecated wrapper around {!run_fig7}. *)
val fig7 : ?runs:int -> fig7_scenario -> fig7_result

(** {2 Phase breakdown — where a traced run's completion time goes} *)

type phase_result = {
  pb_scenario : fig7_scenario;
  pb_system : Scenarios.system;
  pb_seed : int;
  pb_completion_ms : float;
  pb_rows : Traced.phase_row list;
}

(** [phase_breakdown scenario system] runs one seed of a Fig. 7 scenario
    under a trace sink and folds the span tree into per-update phase rows
    (prep / control-plane flight / data-plane propagation / verification /
    ack).  Baseline systems produce no rows: only P4Update is
    span-instrumented. *)
val run_phase_breakdown :
  Run_config.t -> fig7_scenario -> Scenarios.system -> phase_result

(** Deprecated wrapper around {!run_phase_breakdown} (seed 1000). *)
val phase_breakdown : ?seed:int -> fig7_scenario -> Scenarios.system -> phase_result

val render_phase_breakdown : phase_result -> string

(** {2 Fig. 8 — control-plane preparation time ratio} *)

type fig8_row = {
  f8_topology : string;
  f8_nodes : int;
  f8_edges : int;
  f8_p4u_ms : float;   (** total preparation time, this repo's P4Update controller *)
  f8_ez_ms : float;    (** total preparation time, ez-Segway *)
  f8_ratio : float;    (** p4u / ez — Fig. 8 bar value *)
}

(** [run_fig8 cfg] measures the preparation runtime over
    [cfg.iterations] random updates on the four WANs of Fig. 8, in the
    congestion-aware variant when [cfg.congestion]. *)
val run_fig8 : Run_config.t -> fig8_row list

(** Deprecated wrapper around {!run_fig8}. *)
val fig8 : ?iterations:int -> congestion:bool -> unit -> fig8_row list

(** {2 Rendering} *)

val render_fig2 : fig2_result list -> string
val render_fig4 : fig4_result -> string
val render_fig7 : fig7_result -> string
val render_fig8 : congestion:bool -> fig8_row list -> string
