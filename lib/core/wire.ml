module Header = P4rt.Header
module Packet = P4rt.Packet
module Parser = P4rt.Parser

let etype_control = 0x88B5
let etype_data = 0x0800
let flow_space = 1024
let port_none = 255
let port_local = 254

type msg_kind = Frm | Uim | Unm | Ufm | Cln | Wdm

let msg_kind_to_int = function
  | Frm -> 1 | Uim -> 2 | Unm -> 3 | Ufm -> 4 | Cln -> 5 | Wdm -> 6

let msg_kind_of_int = function
  | 1 -> Some Frm
  | 2 -> Some Uim
  | 3 -> Some Unm
  | 4 -> Some Ufm
  | 5 -> Some Cln
  | 6 -> Some Wdm
  | _ -> None

type update_type = Sl | Dl

let update_type_to_int = function Sl -> 1 | Dl -> 2
let update_type_of_int = function 1 -> Some Sl | 2 -> Some Dl | _ -> None

let role_plain = 0
let role_flow_egress = 1
let role_flow_ingress = 2
let role_segment_egress = 4
let role_gateway = 8
let role_committed = 16
let role_two_phase = 32

let ufm_success = 0
let ufm_alarm_distance = 1
let ufm_alarm_stale = 2
let ufm_alarm_wait_budget = 3
let ufm_alarm_timeout = 4

let eth_schema =
  Header.define ~name:"eth" [ ("dst", 16); ("src", 16); ("etype", 16) ]

let p4u_schema =
  Header.define ~name:"p4u"
    [
      ("msg_type", 8);
      ("flow_id", 16);
      ("version_new", 16);
      ("version_old", 16);
      ("dist_new", 16);
      ("dist_old", 16);
      ("update_type", 8);
      ("layer", 8);
      ("counter", 16);
      ("flow_size", 16);
      ("egress_port", 8);
      ("notify_port", 8);
      ("role", 8);
      ("src_node", 16);
    ]

let data_schema =
  Header.define ~name:"data"
    [
      ("flow_id", 16); ("seq", 32); ("ttl", 8); ("origin", 8); ("dst", 16); ("tag", 16);
      ("ts", 32);
    ]

let parser =
  Parser.create
    [
      {
        Parser.state_name = "start";
        extracts = Some eth_schema;
        transition =
          Select
            ( "etype",
              [ (etype_control, "p4u"); (etype_data, "data") ],
              Accept );
      };
      { Parser.state_name = "p4u"; extracts = Some p4u_schema; transition = Accept };
      { Parser.state_name = "data"; extracts = Some data_schema; transition = Accept };
    ]

type control = {
  kind : msg_kind;
  flow_id : int;
  version_new : int;
  version_old : int;
  dist_new : int;
  dist_old : int;
  update_type : update_type;
  layer : int;
  counter : int;
  flow_size : int;
  egress_port : int;
  notify_port : int;
  role : int;
  src_node : int;
}

let control_default kind =
  {
    kind;
    flow_id = 0;
    version_new = 0;
    version_old = 0;
    dist_new = 0;
    dist_old = 0;
    update_type = Sl;
    layer = 0;
    counter = 0;
    flow_size = 0;
    egress_port = port_none;
    notify_port = port_none;
    role = role_plain;
    src_node = 0;
  }

let eth_header ~etype =
  let h = Header.make eth_schema in
  Header.set h "etype" etype

let control_to_packet c =
  let h = Header.make p4u_schema in
  let h = Header.set h "msg_type" (msg_kind_to_int c.kind) in
  let h = Header.set h "flow_id" c.flow_id in
  let h = Header.set h "version_new" c.version_new in
  let h = Header.set h "version_old" c.version_old in
  let h = Header.set h "dist_new" c.dist_new in
  let h = Header.set h "dist_old" c.dist_old in
  let h = Header.set h "update_type" (update_type_to_int c.update_type) in
  let h = Header.set h "layer" c.layer in
  let h = Header.set h "counter" c.counter in
  let h = Header.set h "flow_size" c.flow_size in
  let h = Header.set h "egress_port" c.egress_port in
  let h = Header.set h "notify_port" c.notify_port in
  let h = Header.set h "role" c.role in
  let h = Header.set h "src_node" c.src_node in
  Packet.make [ eth_header ~etype:etype_control; h ]

let control_of_packet pkt =
  match Packet.header pkt "p4u" with
  | None -> None
  | Some h ->
    (match
       ( msg_kind_of_int (Header.get h "msg_type"),
         update_type_of_int (Header.get h "update_type") )
     with
     | Some kind, Some update_type ->
       Some
         {
           kind;
           flow_id = Header.get h "flow_id";
           version_new = Header.get h "version_new";
           version_old = Header.get h "version_old";
           dist_new = Header.get h "dist_new";
           dist_old = Header.get h "dist_old";
           update_type;
           layer = Header.get h "layer";
           counter = Header.get h "counter";
           flow_size = Header.get h "flow_size";
           egress_port = Header.get h "egress_port";
           notify_port = Header.get h "notify_port";
           role = Header.get h "role";
           src_node = Header.get h "src_node";
         }
     | _ -> None)

type data = {
  d_flow_id : int;
  seq : int;
  ttl : int;
  origin : int;
  dst : int;
  tag : int;
  d_ts : int;
}

let data_to_packet d =
  let h = Header.make data_schema in
  let h = Header.set h "flow_id" d.d_flow_id in
  let h = Header.set h "seq" d.seq in
  let h = Header.set h "ttl" d.ttl in
  let h = Header.set h "origin" d.origin in
  let h = Header.set h "dst" d.dst in
  let h = Header.set h "tag" d.tag in
  let h = Header.set h "ts" d.d_ts in
  Packet.make [ eth_header ~etype:etype_data; h ]

let data_of_packet pkt =
  match Packet.header pkt "data" with
  | None -> None
  | Some h ->
    Some
      {
        d_flow_id = Header.get h "flow_id";
        seq = Header.get h "seq";
        ttl = Header.get h "ttl";
        origin = Header.get h "origin";
        dst = Header.get h "dst";
        tag = Header.get h "tag";
        d_ts = Header.get h "ts";
      }

let control_to_bytes c = Packet.serialize (control_to_packet c)
let data_to_bytes d = Packet.serialize (data_to_packet d)

let packet_of_bytes bytes =
  match Parser.run parser bytes with
  | pkt -> Some pkt
  | exception Parser.Parse_error _ -> None

let pp_control fmt c =
  let kind_name = function
    | Frm -> "FRM" | Uim -> "UIM" | Unm -> "UNM" | Ufm -> "UFM" | Cln -> "CLN"
    | Wdm -> "WDM"
  in
  Format.fprintf fmt
    "%s{flow=%d Vn=%d Vo=%d Dn=%d Do=%d type=%s layer=%d C=%d size=%d egr=%d ntf=%d role=%d \
     src=%d}"
    (kind_name c.kind) c.flow_id c.version_new c.version_old c.dist_new c.dist_old
    (match c.update_type with Sl -> "SL" | Dl -> "DL")
    c.layer c.counter c.flow_size c.egress_port c.notify_port c.role c.src_node

(* Trace anchor keys (span handoff across messages; see the mli). *)
let span_key_update ~flow_id ~version = Printf.sprintf "update:%d:%d" flow_id version
let span_key_uim ~flow_id ~version ~node = Printf.sprintf "uim:%d:%d:%d" flow_id version node
let span_key_unm ~flow_id ~version ~node = Printf.sprintf "unm:%d:%d:%d" flow_id version node
let span_key_ufm ~flow_id ~version ~node = Printf.sprintf "ufm:%d:%d:%d" flow_id version node
