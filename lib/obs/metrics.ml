(* Named metrics registry: counters, gauges, and log-scale histograms.

   A registry is a flat name -> instrument table.  Lookup by name is
   idempotent ([counter r "x"] twice returns the same instrument), and hot
   paths are expected to hoist the instrument out of the loop — incrementing
   a counter handle is a single field mutation.

   Histograms use power-of-two buckets and additionally retain raw samples
   so Harness.Stats can compute exact percentiles on snapshot; the retained
   list is capped to keep long chaos runs bounded. *)

type counter = { c_name : string; mutable c_value : int }

type gauge = { g_name : string; mutable g_value : float }

type histogram = {
  h_name : string;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array;  (** bucket i counts samples in [2^(i-1), 2^i) *)
  mutable h_samples : float list;  (** newest first, capped *)
  mutable h_retained : int;
}

let histogram_buckets = 64
let histogram_sample_cap = 100_000

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t = { table : (string, instrument) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }

(* A process-wide registry for leaf modules (p4rt tables/registers) that
   have no good place to thread a registry handle through. *)
let global = create ()

let counter t name =
  match Hashtbl.find_opt t.table name with
  | Some (Counter c) -> c
  | Some _ -> invalid_arg (Printf.sprintf "Metrics.counter: %S is not a counter" name)
  | None ->
    let c = { c_name = name; c_value = 0 } in
    Hashtbl.replace t.table name (Counter c);
    c

let gauge t name =
  match Hashtbl.find_opt t.table name with
  | Some (Gauge g) -> g
  | Some _ -> invalid_arg (Printf.sprintf "Metrics.gauge: %S is not a gauge" name)
  | None ->
    let g = { g_name = name; g_value = 0.0 } in
    Hashtbl.replace t.table name (Gauge g);
    g

let histogram t name =
  match Hashtbl.find_opt t.table name with
  | Some (Histogram h) -> h
  | Some _ ->
    invalid_arg (Printf.sprintf "Metrics.histogram: %S is not a histogram" name)
  | None ->
    let h =
      {
        h_name = name;
        h_count = 0;
        h_sum = 0.0;
        h_min = infinity;
        h_max = neg_infinity;
        h_buckets = Array.make histogram_buckets 0;
        h_samples = [];
        h_retained = 0;
      }
    in
    Hashtbl.replace t.table name (Histogram h);
    h

let incr ?(by = 1) c = c.c_value <- c.c_value + by
let count c = c.c_value
let set g v = g.g_value <- v
let value g = g.g_value

let bucket_of v =
  if v < 1.0 then 0
  else
    let rec go i x = if x < 2.0 || i = histogram_buckets - 1 then i else go (i + 1) (x /. 2.0) in
    go 1 v

let observe h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let b = bucket_of v in
  h.h_buckets.(b) <- h.h_buckets.(b) + 1;
  if h.h_retained < histogram_sample_cap then begin
    h.h_samples <- v :: h.h_samples;
    h.h_retained <- h.h_retained + 1
  end

let samples h = List.rev h.h_samples
let hcount h = h.h_count

(* Estimated percentile from the log2 buckets (linear interpolation
   inside the target bucket).  Validation and interpolation live in
   {!Quantile}, the same implementation backing [Harness.Stats], so both
   reject the same p-ranges with the same semantics. *)
let percentile_opt h p =
  Quantile.of_buckets_opt ~who:"Metrics.percentile" p ~count:h.h_count
    ~buckets:h.h_buckets

let percentile h p =
  match percentile_opt h p with
  | Some v -> v
  | None -> invalid_arg "Metrics.percentile: empty histogram"

(* Lower edge of bucket [i]: 0 for bucket 0, else 2^(i-1). *)
let bucket_floor i = if i = 0 then 0.0 else Float.of_int (1 lsl (i - 1))

let get t name = Hashtbl.find_opt t.table name

let get_count t name =
  match Hashtbl.find_opt t.table name with
  | Some (Counter c) -> c.c_value
  | _ -> 0

let reset t =
  Hashtbl.iter
    (fun _ inst ->
      match inst with
      | Counter c -> c.c_value <- 0
      | Gauge g -> g.g_value <- 0.0
      | Histogram h ->
        h.h_count <- 0;
        h.h_sum <- 0.0;
        h.h_min <- infinity;
        h.h_max <- neg_infinity;
        Array.fill h.h_buckets 0 histogram_buckets 0;
        h.h_samples <- [];
        h.h_retained <- 0)
    t.table

let names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.table []
  |> List.sort compare

let to_json t =
  let entry name =
    match Hashtbl.find_opt t.table name with
    | None -> None
    | Some (Counter c) -> Some (name, Json.Obj [ ("type", Json.Str "counter"); ("value", Json.Int c.c_value) ])
    | Some (Gauge g) -> Some (name, Json.Obj [ ("type", Json.Str "gauge"); ("value", Json.Float g.g_value) ])
    | Some (Histogram h) ->
      let buckets =
        let acc = ref [] in
        for i = histogram_buckets - 1 downto 0 do
          if h.h_buckets.(i) > 0 then
            acc :=
              Json.Obj
                [ ("ge", Json.Float (bucket_floor i)); ("n", Json.Int h.h_buckets.(i)) ]
              :: !acc
        done;
        !acc
      in
      Some
        ( name,
          Json.Obj
            [
              ("type", Json.Str "histogram");
              ("count", Json.Int h.h_count);
              ("sum", Json.Float h.h_sum);
              ("min", Json.Float (if h.h_count = 0 then 0.0 else h.h_min));
              ("max", Json.Float (if h.h_count = 0 then 0.0 else h.h_max));
              ("buckets", Json.List buckets);
            ] )
  in
  Json.Obj (List.filter_map entry (names t))
