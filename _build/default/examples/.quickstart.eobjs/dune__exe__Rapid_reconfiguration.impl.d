examples/rapid_reconfiguration.ml: Array Controller Dessim Format Harness List P4update Printf String Switch Topo Wire
