(** Deterministic k-way topology partitioner for the sharded control
    plane (DESIGN §13).

    Domains are hop-distance Voronoi cells around [k] seeded centers
    (farthest-point selection, total-order tie-breaking), so the split
    is a pure function of (graph, k, seed) and safe to pin in tests.
    Gateways are the endpoints of cross-domain edges; any path that
    visits two domains necessarily traverses one, which is where the
    sharded coordinator stitches cross-domain updates with DL labels. *)

type t

val make : ?seed:int -> Topo.Graph.t -> k:int -> t
(** [make ?seed g ~k] splits [g] into [min k (node_count g)] domains.
    Raises [Invalid_argument] on an empty graph. *)

val domains : t -> int
(** Number of domains actually produced (k clamped to the node count). *)

val seed : t -> int

val center : t -> int -> int
(** Center node of a domain. *)

val domain_of : t -> int -> int
(** Owning domain of a node. *)

val nodes_of : t -> int -> int list
(** Nodes of a domain, ascending. *)

val size : t -> int -> int

val is_gateway : t -> int -> bool
(** True iff the node is an endpoint of a cross-domain edge. *)

val cross_edges : t -> (int * int) list
(** Cross-domain edges as sorted [(min u v, max u v)] pairs. *)

val crosses : t -> int list -> bool
(** Does the path visit more than one domain? *)

val gateways_on : t -> int list -> int list
(** Gateway nodes along a path, in path order. *)

val fingerprint : t -> int
(** Stable digest of the whole assignment, for determinism pins. *)

val pp : Format.formatter -> t -> unit
