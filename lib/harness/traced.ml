(* Traced scenario runners and the per-update phase breakdown.

   A run is executed with a trace sink installed; afterwards the span tree
   is folded into one row per (flow, version): where the update's
   end-to-end time went.  The decomposition is exact by construction —
   every phase is a difference of milestones on the update's root span, so
   the phases sum to the root span's duration (the completion time). *)

module Sim = Dessim.Sim

type phase_row = {
  ph_flow : int;
  ph_version : int;
  ph_prep : float;  (** controller compute before the first UIM leaves *)
  ph_ctl_flight : float;  (** push -> last UIM applied at a switch *)
  ph_propagation : float;  (** UNM hop time on the data plane *)
  ph_verification : float;  (** Alg. 1/2 rounds + rule-install waits *)
  ph_ack : float;  (** last commit -> success UFM at the controller *)
  ph_total : float;
}

(* --- span-tree folding --- *)

type span_acc = {
  sa_name : string;
  sa_begin : float;
  sa_flow : int;
  sa_version : int;
  mutable sa_end : float option;
  mutable sa_end_attrs : Obs.Trace.attr list;
}

let attr_int key attrs =
  match List.assoc_opt key attrs with
  | Some (Obs.Json.Int i) -> Some i
  | _ -> None

let attr_str key attrs =
  match List.assoc_opt key attrs with
  | Some (Obs.Json.Str s) -> Some s
  | _ -> None

let phase_rows sink =
  let spans : (int, span_acc) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (function
      | Obs.Trace.Span_begin b ->
        (match (attr_int "flow" b.attrs, attr_int "version" b.attrs) with
        | Some flow, Some version ->
          Hashtbl.replace spans b.id
            {
              sa_name = b.name;
              sa_begin = b.ts;
              sa_flow = flow;
              sa_version = version;
              sa_end = None;
              sa_end_attrs = [];
            }
        | _ -> ())
      | Obs.Trace.Span_end { id; ts; attrs } -> (
        match Hashtbl.find_opt spans id with
        | Some sa ->
          sa.sa_end <- Some ts;
          sa.sa_end_attrs <- attrs
        | None -> ())
      | Obs.Trace.Instant _ -> ())
    (Obs.Trace.events sink);
  (* Milestones per (flow, version). *)
  let roots = Hashtbl.create 16 in
  let milestones = Hashtbl.create 64 in
  let get key = Option.value (Hashtbl.find_opt milestones key) ~default:(0.0, 0.0, 0.0) in
  Hashtbl.iter
    (fun _ sa ->
      let key = (sa.sa_flow, sa.sa_version) in
      match (sa.sa_name, sa.sa_end) with
      | "update", Some e -> Hashtbl.replace roots key (sa.sa_begin, e)
      | "uim.flight", Some e ->
        let m1, m2, prop = get key in
        Hashtbl.replace milestones key (Float.max m1 e, m2, prop)
      | "commit", Some e when attr_str "outcome" sa.sa_end_attrs = Some "committed" ->
        let m1, m2, prop = get key in
        Hashtbl.replace milestones key (m1, Float.max m2 e, prop)
      | "unm.hop", Some e ->
        let m1, m2, prop = get key in
        Hashtbl.replace milestones key (m1, m2, prop +. (e -. sa.sa_begin))
      | _ -> ())
    spans;
  let rows =
    Hashtbl.fold
      (fun ((flow, version) as key) (m0, m3) acc ->
        let m1, m2, prop_raw = get key in
        (* Clamp milestones into the root's window: a lost-then-retransmitted
           UIM can land after the update already completed via another path. *)
        let m1 = Float.min (Float.max m1 m0) m3 in
        let m2 = Float.min (Float.max m2 m1) m3 in
        let verify_window = m2 -. m1 in
        let propagation = Float.min (Float.max prop_raw 0.0) verify_window in
        {
          ph_flow = flow;
          ph_version = version;
          ph_prep = 0.0;
          (* prepare() runs within the push instant of simulated time *)
          ph_ctl_flight = m1 -. m0;
          ph_propagation = propagation;
          ph_verification = verify_window -. propagation;
          ph_ack = m3 -. m2;
          ph_total = m3 -. m0;
        }
        :: acc)
      roots []
  in
  List.sort
    (fun a b ->
      match compare a.ph_flow b.ph_flow with
      | 0 -> compare a.ph_version b.ph_version
      | n -> n)
    rows

let render_phases rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "flow    ver      prep  ctl-flight  propagation  verification         ack       total\n";
  let line r =
    Buffer.add_string buf
      (Printf.sprintf "%-6d %4d  %8.2f  %10.2f  %11.2f  %12.2f  %10.2f  %10.2f\n"
         r.ph_flow r.ph_version r.ph_prep r.ph_ctl_flight r.ph_propagation
         r.ph_verification r.ph_ack r.ph_total)
  in
  List.iter line rows;
  (match rows with
  | [] | [ _ ] -> ()
  | _ ->
    let sum f = List.fold_left (fun acc r -> acc +. f r) 0.0 rows in
    Buffer.add_string buf
      (Printf.sprintf "%-6s %4s  %8.2f  %10.2f  %11.2f  %12.2f  %10.2f  %10.2f\n" "all" ""
         (sum (fun r -> r.ph_prep))
         (sum (fun r -> r.ph_ctl_flight))
         (sum (fun r -> r.ph_propagation))
         (sum (fun r -> r.ph_verification))
         (sum (fun r -> r.ph_ack))
         (sum (fun r -> r.ph_total))));
  Buffer.contents buf

(* --- traced runners --- *)

type result = {
  tr_sink : Obs.Trace.sink;
  tr_completion_ms : float;
  tr_phases : phase_row list;
}

let with_sink ?sink ?(exclude = [ "sim"; "net"; "p4rt" ]) f =
  let sink = match sink with Some s -> s | None -> Obs.Trace.create ~exclude () in
  Obs.Trace.install sink;
  Fun.protect ~finally:Obs.Trace.uninstall (fun () ->
      let completion = f () in
      { tr_sink = sink; tr_completion_ms = completion; tr_phases = phase_rows sink })

let run_single_cfg (cfg : Run_config.t) ?update_type ?exclude setup system ~old_path
    ~new_path =
  with_sink ?sink:cfg.Run_config.trace_sink ?exclude (fun () ->
      Scenarios.single_flow_time ?update_type setup system ~old_path ~new_path
        ~seed:cfg.Run_config.seed)

let run_multi_cfg (cfg : Run_config.t) ?update_type ?exclude setup system =
  with_sink ?sink:cfg.Run_config.trace_sink ?exclude (fun () ->
      Scenarios.multi_flow_time ?update_type setup system ~seed:cfg.Run_config.seed)

let run_single ?update_type ?exclude setup system ~old_path ~new_path ~seed =
  run_single_cfg (Run_config.make ~seed ()) ?update_type ?exclude setup system
    ~old_path ~new_path

let run_multi ?update_type ?exclude setup system ~seed =
  run_multi_cfg (Run_config.make ~seed ()) ?update_type ?exclude setup system
