lib/core/verify.ml:
