lib/core/label.mli: Netsim
