(* Unit tests for ez-Segway's preparation internals: segmentation
   classes, plan encoding and the centralized congestion dependency
   graph whose cost Fig. 8b measures. *)

module Ez = Baselines.Ez_segway

let net_of topo = Netsim.create (Dessim.Sim.create ()) topo

let fig1_request =
  {
    Ez.ur_flow = 1;
    ur_size = 100;
    ur_old_path = Topo.Topologies.fig1_old_path;
    ur_new_path = Topo.Topologies.fig1_new_path;
  }

let test_plan_structure () =
  let net = net_of (Topo.Topologies.fig1 ()) in
  match Ez.prepare net ~congestion:false [ fig1_request ] with
  | [ plan ] ->
    Alcotest.(check int) "one plan node per path node"
      (List.length Topo.Topologies.fig1_new_path)
      (List.length plan.Ez.pf_nodes);
    Alcotest.(check int) "three segments" 3 (List.length plan.Ez.pf_segment_orders);
    (* segment orders run from the egress side *)
    let order_heads = List.map (fun (seg, _) -> List.hd seg) plan.Ez.pf_segment_orders in
    Alcotest.(check (list int)) "orders start at segment egresses" [ 2; 4; 7 ] order_heads;
    (* only the middle segment is in_loop *)
    let classes = List.map snd plan.Ez.pf_segment_orders in
    Alcotest.(check (list bool)) "in_loop classes" [ false; true; false ] classes;
    (* every in_loop segment depends on all downstream segments *)
    Alcotest.(check (list (pair int int))) "dependencies" [ (1, 2) ] plan.Ez.pf_dependencies
  | _ -> Alcotest.fail "expected one plan"

let test_plan_changed_flags () =
  let net = net_of (Topo.Topologies.fig1 ()) in
  match Ez.prepare net ~congestion:false [ fig1_request ] with
  | [ plan ] ->
    let changed n =
      (List.find (fun p -> p.Ez.pn_node = n) plan.Ez.pf_nodes).Ez.pn_changed
    in
    Alcotest.(check bool) "v0 changes (0->1 vs 0->4)" true (changed 0);
    Alcotest.(check bool) "v1 gets a fresh rule" true (changed 1);
    Alcotest.(check bool) "egress unchanged" false (changed 7)
  | _ -> Alcotest.fail "expected one plan"

let test_dependency_graph_priorities () =
  let topo = Topo.Topologies.fig1 () in
  let net = net_of topo in
  (* Flow 9 wants to enter link (0,4), which flow 8 currently fills. *)
  let requests =
    [
      { Ez.ur_flow = 8; ur_size = 900; ur_old_path = [ 0; 4; 5 ]; ur_new_path = [ 0; 1; 2; 4; 5 ] };
      { Ez.ur_flow = 9; ur_size = 900; ur_old_path = [ 0; 1; 2; 7 ]; ur_new_path = [ 0; 4; 2; 7 ] };
    ]
  in
  let dg = Ez.build_dependency_graph net requests in
  (* flow 9's entry into (0,4) depends on flow 8 leaving it, and flow 8's
     detour crosses the links flow 9 is leaving: a mutual dependency, so
     both land in the most-restricted class. *)
  Alcotest.(check bool) "at least one dependency edge" true (dg.Ez.dg_edges <> []);
  let pri flow = Hashtbl.find dg.Ez.dg_priority flow in
  Alcotest.(check int) "the blocked flow moves last (class 2)" 2 (pri 9);
  Alcotest.(check int) "the counterpart is equally restricted" 2 (pri 8)

let test_dependency_graph_no_contention () =
  let net = net_of (Topo.Topologies.fig1 ()) in
  (* Tiny flows: nobody blocks anybody. *)
  let requests =
    [ { fig1_request with Ez.ur_size = 1 };
      { Ez.ur_flow = 2; ur_size = 1; ur_old_path = [ 0; 4; 5 ]; ur_new_path = [ 0; 1; 2; 4; 5 ] } ]
  in
  let dg = Ez.build_dependency_graph net requests in
  Alcotest.(check (list (pair int int))) "no edges" [] dg.Ez.dg_edges;
  Hashtbl.iter
    (fun flow cls ->
      Alcotest.(check int) (Printf.sprintf "flow %d plain class" flow) 1 cls)
    dg.Ez.dg_priority

let test_dependency_graph_cycle_detected () =
  (* A genuine swap: each flow must enter the link the other leaves. *)
  let g = Topo.Graph.create 4 in
  Topo.Graph.add_edge g ~u:0 ~v:1 ~latency_ms:1.0 ~capacity:10.0;
  Topo.Graph.add_edge g ~u:1 ~v:3 ~latency_ms:1.0 ~capacity:10.0;
  Topo.Graph.add_edge g ~u:0 ~v:2 ~latency_ms:1.0 ~capacity:10.0;
  Topo.Graph.add_edge g ~u:2 ~v:3 ~latency_ms:1.0 ~capacity:10.0;
  let topo =
    { Topo.Topologies.name = "swap"; kind = Topo.Topologies.Synthetic; graph = g;
      node_names = [| "a"; "b"; "c"; "d" |]; controller = 0 }
  in
  let net = net_of topo in
  let requests =
    [
      { Ez.ur_flow = 1; ur_size = 900; ur_old_path = [ 0; 1; 3 ]; ur_new_path = [ 0; 2; 3 ] };
      { Ez.ur_flow = 2; ur_size = 900; ur_old_path = [ 0; 2; 3 ]; ur_new_path = [ 0; 1; 3 ] };
    ]
  in
  let dg = Ez.build_dependency_graph net requests in
  Alcotest.(check bool) "cycle detected" true (Array.exists Fun.id dg.Ez.dg_in_cycle);
  Alcotest.(check int) "both flows in the last class" 2 (Hashtbl.find dg.Ez.dg_priority 1);
  Alcotest.(check int) "both flows in the last class (2)" 2 (Hashtbl.find dg.Ez.dg_priority 2)

let suite =
  [
    Alcotest.test_case "plan structure on fig. 1" `Quick test_plan_structure;
    Alcotest.test_case "plan changed flags" `Quick test_plan_changed_flags;
    Alcotest.test_case "dependency graph priorities" `Quick test_dependency_graph_priorities;
    Alcotest.test_case "dependency graph without contention" `Quick
      test_dependency_graph_no_contention;
    Alcotest.test_case "dependency cycle detection" `Quick test_dependency_graph_cycle_detected;
  ]
