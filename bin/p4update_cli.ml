(* Command-line front end: inspect topologies, run individual update
   scenarios, regenerate the paper's figures, and stress the plane with
   the scale engine.

   Every subcommand builds exactly one [Harness.Run_config.t] from its
   flags and hands it to the library — the CLI owns flag parsing, the
   config record owns the knobs.  Flag specs shared across subcommands
   (--seed/--topo/--runs, the observability four, --shards) and the
   uniform exit-code table live in {!Cli_common}.

   Examples:
     p4update topo --name b4
     p4update single --topo internet2 --system all --runs 10
     p4update multi --topo fat-tree --system p4update
     p4update fig --id 7c
     p4update scale --topo chinanet --updates 2000 --shards 4
*)

open Cmdliner
open Cli_common

(* --- topo --- *)

let topo_cmd =
  let run (name, build) =
    let topo = build () in
    let g = topo.Topo.Topologies.graph in
    Printf.printf "%s: %d nodes, %d edges, controller at %s (node %d)\n" name
      (Topo.Graph.node_count g) (Topo.Graph.edge_count g)
      topo.Topo.Topologies.node_names.(topo.Topo.Topologies.controller)
      topo.Topo.Topologies.controller;
    List.iter
      (fun e ->
        Printf.printf "  %-20s -- %-20s %7.2f ms  cap %.1f\n"
          topo.Topo.Topologies.node_names.(e.Topo.Graph.u)
          topo.Topo.Topologies.node_names.(e.Topo.Graph.v)
          e.Topo.Graph.latency_ms e.Topo.Graph.capacity)
      (Topo.Graph.edges g)
  in
  Cmd.v (cmd_info "topo" ~doc:"Print a topology.") Term.(const run $ topo_arg ())

(* --- single / multi --- *)

let summarize_runs cfg setup systems ~time_of =
  List.iter
    (fun sys ->
      let samples =
        List.filter_map
          (fun i ->
            let seed = Harness.Run_config.run_seed cfg i in
            match time_of setup sys ~seed with
            | t -> Some t
            | exception Failure _ -> None)
          (List.init cfg.Harness.Run_config.runs (fun i -> i))
      in
      print_endline (Harness.Stats.summary (Harness.Scenarios.system_name sys) samples))
    systems

let single_cmd =
  let run (name, build) system seed runs =
    let cfg = cfg_of ~seed ~runs () in
    let topo = build () in
    let old_path, new_path =
      if name = "fig1" then (Topo.Topologies.fig1_old_path, Topo.Topologies.fig1_new_path)
      else Harness.Scenarios.single_flow_paths topo
    in
    Printf.printf "single-flow update on %s: [%s] -> [%s]\n" name
      (String.concat ";" (List.map string_of_int old_path))
      (String.concat ";" (List.map string_of_int new_path));
    let setup =
      { Harness.Scenarios.topo = build; stragglers = true; congestion = false;
        headroom = 1.4; control = None }
    in
    summarize_runs cfg setup (systems_of system) ~time_of:(fun setup sys ~seed ->
        Harness.Scenarios.single_flow_time setup sys ~old_path ~new_path ~seed)
  in
  Cmd.v (cmd_info "single" ~doc:"Run the single-flow (straggler) scenario.")
    Term.(const run $ topo_arg () $ system_arg $ seed_arg ~default:scenario_seed_base
          $ runs_arg)

let multi_cmd =
  let run (name, build) system seed runs =
    let cfg = cfg_of ~seed ~runs () in
    let control =
      if name = "fat-tree" then Some (Netsim.Normal_dist { mean = 5.0; stddev = 2.0 })
      else None
    in
    let setup =
      { Harness.Scenarios.topo = build; stragglers = false; congestion = true;
        headroom = 1.4; control }
    in
    Printf.printf "multi-flow update on %s (congested, near capacity)\n" name;
    summarize_runs cfg setup (systems_of system)
      ~time_of:(fun setup sys ~seed -> Harness.Scenarios.multi_flow_time setup sys ~seed)
  in
  Cmd.v (cmd_info "multi" ~doc:"Run the multi-flow (congestion) scenario.")
    Term.(const run $ topo_arg () $ system_arg $ seed_arg ~default:scenario_seed_base
          $ runs_arg)

(* --- fig --- *)

let fig_cmd =
  let id_arg =
    Arg.(required & opt (some string) None
         & info [ "id" ] ~docv:"ID" ~doc:"Figure id: 2, 4, 7a..7f, 8a, 8b.")
  in
  let runs_opt_arg =
    Arg.(value & opt (some int) None
         & info [ "runs"; "r" ] ~docv:"N"
             ~doc:"Number of seeded runs (default: the figure's own).")
  in
  let phases_arg =
    Arg.(value & flag
         & info [ "phases" ]
             ~doc:"For 7a..7f: trace one P4Update run and print the per-update \
                   phase breakdown instead of the CDFs.")
  in
  let run_figure cfg id =
    match id with
    | "2" -> print_string (Harness.Experiments.render_fig2 (Harness.Experiments.run_fig2 cfg))
    | "4" -> print_string (Harness.Experiments.render_fig4 (Harness.Experiments.run_fig4 cfg))
    | "8a" ->
      print_string
        (Harness.Experiments.render_fig8 ~congestion:false
           (Harness.Experiments.run_fig8 cfg))
    | "8b" ->
      let cfg =
        { cfg with Harness.Run_config.congestion = true; iterations = 100 }
      in
      print_string
        (Harness.Experiments.render_fig8 ~congestion:true
           (Harness.Experiments.run_fig8 cfg))
    | id ->
      (match
         List.find_opt
           (fun sc -> sc.Harness.Experiments.f7_id = id)
           (Harness.Experiments.fig7_scenarios ())
       with
       | Some sc ->
         print_string (Harness.Experiments.render_fig7 (Harness.Experiments.run_fig7 cfg sc))
       | None -> Printf.eprintf "unknown figure id %S\n" id; exit 1)
  in
  let run id seed runs phases =
    (* Figures default to their published sample counts (Run_config.default);
       an explicit --runs overrides. *)
    let cfg = cfg_of ~seed ?runs () in
    if phases then
      match
        List.find_opt
          (fun sc -> sc.Harness.Experiments.f7_id = id)
          (Harness.Experiments.fig7_scenarios ())
      with
      | Some sc ->
        let cfg = { cfg with Harness.Run_config.seed = scenario_seed_base } in
        print_string
          (Harness.Experiments.render_phase_breakdown
             (Harness.Experiments.run_phase_breakdown cfg sc Harness.Scenarios.P4u))
      | None ->
        Printf.eprintf "--phases needs a Fig. 7 scenario id (7a..7f), got %S\n" id;
        exit 1
    else run_figure cfg id
  in
  Cmd.v (cmd_info "fig" ~doc:"Regenerate one evaluation figure.")
    Term.(const run $ id_arg $ seed_arg ~default:Harness.Run_config.default.seed
          $ runs_opt_arg $ phases_arg)

(* --- trace --- *)

let trace_cmd =
  let out_arg =
    Arg.(value & opt string "trace.json"
         & info [ "out"; "o" ] ~docv:"FILE"
             ~doc:"Write the Chrome trace-event JSON here (Perfetto-loadable).")
  in
  let jsonl_arg =
    Arg.(value & opt (some string) None
         & info [ "jsonl" ] ~docv:"FILE" ~doc:"Also write the raw JSONL event stream.")
  in
  let multi_arg =
    Arg.(value & flag
         & info [ "multi" ] ~doc:"Trace the multi-flow (congestion) scenario instead.")
  in
  let full_arg =
    Arg.(value & flag
         & info [ "full" ]
             ~doc:"Include the scheduler / packet / pipeline categories \
                   (sim, net, p4rt) that are filtered out by default.")
  in
  let run (name, build) system seed out jsonl multi full =
    let sys = match system with Some s -> s | None -> Harness.Scenarios.P4u in
    let exclude = if full then [] else [ "sim"; "net"; "p4rt" ] in
    let cfg = cfg_of ~seed ~trace_sink:(Obs.Trace.create ~exclude ()) () in
    let result =
      if multi then begin
        let setup =
          { Harness.Scenarios.topo = build; stragglers = false; congestion = true;
            headroom = 1.4; control = None }
        in
        Printf.printf "tracing multi-flow update on %s (%s, seed %d)\n" name
          (Harness.Scenarios.system_name sys) seed;
        Harness.Traced.run_multi_cfg cfg ~exclude setup sys
      end
      else begin
        let topo = build () in
        let old_path, new_path =
          if name = "fig1" then (Topo.Topologies.fig1_old_path, Topo.Topologies.fig1_new_path)
          else Harness.Scenarios.single_flow_paths topo
        in
        let setup =
          { Harness.Scenarios.topo = build; stragglers = true; congestion = false;
            headroom = 1.4; control = None }
        in
        Printf.printf "tracing single-flow update on %s (%s, seed %d): [%s] -> [%s]\n" name
          (Harness.Scenarios.system_name sys) seed
          (String.concat ";" (List.map string_of_int old_path))
          (String.concat ";" (List.map string_of_int new_path));
        Harness.Traced.run_single_cfg cfg ~exclude setup sys ~old_path ~new_path
      end
    in
    write_file out (Obs.Trace.to_chrome ~pretty:true result.Harness.Traced.tr_sink);
    Printf.printf "completion: %.2f ms\n" result.Harness.Traced.tr_completion_ms;
    Printf.printf "wrote %s (%d events; load it at https://ui.perfetto.dev)\n" out
      (List.length (Obs.Trace.events result.Harness.Traced.tr_sink));
    (match jsonl with
     | Some path ->
       write_file path (Obs.Trace.to_jsonl result.Harness.Traced.tr_sink);
       Printf.printf "wrote %s\n" path
     | None -> ());
    match result.Harness.Traced.tr_phases with
    | [] ->
      print_endline
        "no per-update phase breakdown (span tree incomplete — is this a baseline system?)"
    | rows ->
      print_newline ();
      print_string (Harness.Traced.render_phases rows)
  in
  Cmd.v
    (cmd_info "trace"
       ~doc:
         "Run one scenario with the tracing sink installed; export a Chrome \
          trace (Perfetto) plus a per-update phase breakdown.")
    Term.(const run $ topo_arg () $ system_arg $ seed_arg ~default:scenario_seed_base
          $ out_arg $ jsonl_arg $ multi_arg $ full_arg)

(* --- chaos --- *)

let chaos_cmd =
  let scenario_conv =
    let parse s =
      match Harness.Chaos.scenario_of_string s with
      | Some sc -> Ok (Some sc)
      | None when s = "all" -> Ok None
      | None -> Error (`Msg (Printf.sprintf "unknown scenario %S (fig1 | b4 | fat-tree | all)" s))
    in
    let print fmt = function
      | Some sc -> Format.pp_print_string fmt (Harness.Chaos.scenario_name sc)
      | None -> Format.pp_print_string fmt "all"
    in
    Arg.conv (parse, print)
  in
  let scenario_arg =
    Arg.(value & opt scenario_conv None
         & info [ "scenario" ] ~docv:"SC" ~doc:"Scenario: fig1, b4, fat-tree or all.")
  in
  let seed_arg =
    Arg.(value & opt (some int) None
         & info [ "seed" ] ~docv:"N" ~doc:"Run a single seed instead of a range.")
  in
  let no_recovery_arg =
    Arg.(value & flag
         & info [ "no-recovery" ]
             ~doc:"Disable the controller's \xc2\xa711 recovery loop (watchdog alarms only).")
  in
  let trace_out_arg =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"Trace each degraded run (faults tagged as chaos instants) and write \
                   Chrome trace JSON; with several runs, FILE gets the scenario and seed \
                   appended.")
  in
  let run scenario seed runs no_recovery trace_out shards obs =
    let fault_plan =
      { Harness.Run_config.default_faults with fp_recovery = not no_recovery }
    in
    let scenarios =
      match scenario with Some sc -> [ sc ] | None -> Harness.Chaos.all_scenarios
    in
    let seeds = match seed with Some s -> [ s ] | None -> List.init runs (fun i -> i + 1) in
    let single = List.length scenarios = 1 && List.length seeds = 1 in
    let failed = ref 0 in
    List.iter
      (fun sc ->
        List.iter
          (fun seed ->
            let trace_sink =
              match trace_out with
              | None -> None
              | Some _ -> Some (Obs.Trace.create ~exclude:[ "sim"; "net"; "p4rt" ] ())
            in
            let cfg = cfg_of ~seed ~fault_plan ?trace_sink ~obs ~shards () in
            let r = Harness.Chaos.run_cfg cfg ~scenario:sc in
            (match (trace_out, trace_sink) with
            | Some path, Some sink ->
              let path =
                if single then path
                else
                  Printf.sprintf "%s.%s.%d%s"
                    (Filename.remove_extension path)
                    (Harness.Chaos.scenario_name sc) seed
                    (let e = Filename.extension path in
                     if e = "" then ".json" else e)
              in
              write_file path (Obs.Trace.to_chrome ~pretty:true sink);
              Printf.printf "trace: %d events -> %s\n"
                (List.length (Obs.Trace.events sink)) path
            | _ -> ());
            print_endline (Harness.Chaos.report_line r);
            List.iter
              (fun v ->
                Printf.printf "  t=%.1fms flow=%d: %s\n" v.Harness.Chaos.v_time
                  v.Harness.Chaos.v_flow v.Harness.Chaos.v_what)
              r.Harness.Chaos.r_violations;
            if not no_recovery && not (Harness.Chaos.ok r) then incr failed)
          seeds)
      scenarios;
    if !failed > 0 then exit 1
  in
  Cmd.v
    (cmd_info "chaos"
       ~doc:
         "Run seeded chaos schedules (both-plane faults plus link/node failures) and check \
          the Thm. 1-4 invariants and convergence.")
    Term.(const run $ scenario_arg $ seed_arg $ runs_arg $ no_recovery_arg $ trace_out_arg
          $ shards_arg $ obs_term)

(* --- mc --- *)

let mc_cmd =
  let scenario_arg =
    Arg.(value & opt (some string) None
         & info [ "scenario" ] ~docv:"SC"
             ~doc:(Printf.sprintf "Scenario to check: %s or all (default)."
                     (String.concat ", "
                        (List.map (fun s -> s.Mc.Scenario.sc_name) Mc.Scenario.all))))
  in
  let window_arg =
    Arg.(value & opt (some float) None
         & info [ "window" ] ~docv:"MS"
             ~doc:"Reorder window in ms (default: per-scenario). Deliveries within \
                   WINDOW ms of the earliest pending event may be scheduled first.")
  in
  let depth_arg =
    Arg.(value & opt int Mc.Explore.default_bounds.Mc.Explore.b_max_depth
         & info [ "depth" ] ~docv:"N" ~doc:"Maximum branch points per schedule.")
  in
  let max_schedules_arg =
    Arg.(value & opt int Mc.Explore.default_bounds.Mc.Explore.b_max_schedules
         & info [ "max-schedules" ] ~docv:"N" ~doc:"Stop after exploring N schedules.")
  in
  let no_por_arg =
    Arg.(value & flag
         & info [ "no-por" ]
             ~doc:"Disable sleep-set partial-order reduction (to measure its effect).")
  in
  let unsafe_arg =
    Arg.(value & flag
         & info [ "unsafe" ]
             ~doc:"Toggle the scenario's DESIGN \xc2\xa74b fix OFF for the run: the checker \
                   must then find and minimize the historical violation.")
  in
  let trace_out_arg =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"Replay the (minimized) counterexample — or the default schedule if \
                   none — and write a Chrome trace with mc.choice instants.")
  in
  let run scenario window depth max_schedules no_por unsafe trace_out =
    let scenarios =
      match scenario with
      | None -> Mc.Scenario.all
      | Some name -> (
        match Mc.Scenario.find name with
        | Some sc -> [ sc ]
        | None ->
          Printf.eprintf "unknown mc scenario %S (try: %s)\n" name
            (String.concat ", " (List.map (fun s -> s.Mc.Scenario.sc_name) Mc.Scenario.all));
          exit 1)
    in
    (* The reorder window rides on the config; bounds keep the search
       knobs.  Scenario worlds pin their own seed (Scenario.default_cfg). *)
    let cfg =
      { Mc.Scenario.default_cfg with Harness.Run_config.reorder_window_ms = window }
    in
    let bounds =
      { Mc.Explore.default_bounds with
        b_max_depth = depth; b_max_schedules = max_schedules; b_por = not no_por }
    in
    let found = ref false in
    List.iter
      (fun sc ->
        let r = Mc.Explore.check ~bounds ~cfg ~unsafe sc in
        print_endline (Mc.Explore.verdict_line r);
        match r.Mc.Explore.r_verdict with
        | Mc.Explore.Found cex ->
          found := true;
          (match trace_out with
           | None -> ()
           | Some path ->
             let sink = Obs.Trace.create ~exclude:[ "sim" ] () in
             Mc.Scenario.with_toggle sc ~unsafe (fun () ->
                 Mc.Explore.replay ~cfg sc ~window:r.Mc.Explore.r_window_ms
                   cex.Mc.Explore.cex_schedule sink);
             write_file path (Obs.Trace.to_chrome ~pretty:true sink);
             Printf.printf "counterexample replay: %d events -> %s (load at \
                            https://ui.perfetto.dev)\n"
               (List.length (Obs.Trace.events sink)) path)
        | _ ->
          (match trace_out with
           | None -> ()
           | Some path ->
             let sink = Obs.Trace.create ~exclude:[ "sim" ] () in
             Mc.Scenario.with_toggle sc ~unsafe (fun () ->
                 Mc.Explore.replay ~cfg sc ~window:r.Mc.Explore.r_window_ms [] sink);
             write_file path (Obs.Trace.to_chrome ~pretty:true sink);
             Printf.printf "default-schedule replay: %d events -> %s\n"
               (List.length (Obs.Trace.events sink)) path))
      scenarios;
    (* [--unsafe] succeeding means the violation WAS found; plain runs
       succeed when no violation exists. *)
    if unsafe && not !found then exit 1;
    if (not unsafe) && !found then exit 1
  in
  Cmd.v
    (cmd_info "mc"
       ~doc:
         "Systematically model-check delivery interleavings of a scenario against the \
          Thm. 1-4 invariants (sleep-set POR, fingerprint pruning, counterexample \
          minimization).")
    Term.(const run $ scenario_arg $ window_arg $ depth_arg $ max_schedules_arg
          $ no_por_arg $ unsafe_arg $ trace_out_arg)

(* --- scale --- *)

let scale_cmd =
  let updates_arg =
    Arg.(value & opt int Harness.Scale.default_workload.Harness.Scale.wl_updates
         & info [ "updates"; "u" ] ~docv:"N" ~doc:"Total updates to drive.")
  in
  let flows_arg =
    Arg.(value & opt int Harness.Scale.default_workload.Harness.Scale.wl_flows
         & info [ "flows" ] ~docv:"N" ~doc:"Concurrent flow population.")
  in
  let arrival_arg =
    Arg.(value & opt float Harness.Scale.default_workload.Harness.Scale.wl_arrival_mean_ms
         & info [ "arrival-mean" ] ~docv:"MS" ~doc:"Poisson mean between bursts (ms).")
  in
  let burst_arg =
    Arg.(value & opt int Harness.Scale.default_workload.Harness.Scale.wl_burst
         & info [ "burst" ] ~docv:"N" ~doc:"Updates per arrival burst.")
  in
  let churn_arg =
    Arg.(value & opt float Harness.Scale.default_workload.Harness.Scale.wl_churn
         & info [ "churn" ] ~docv:"P" ~doc:"Per-burst flow churn probability.")
  in
  let probe_arg =
    Arg.(value & opt int Harness.Scale.default_workload.Harness.Scale.wl_probe_every
         & info [ "probe-every" ] ~docv:"N"
             ~doc:"Invariant probe every N bursts (0 disables).")
  in
  let intent_churn_arg =
    Arg.(value & flag
         & info [ "intent-churn" ]
             ~doc:"Source churn from the intent layer (seeded drain/undrain \
                   cycles and TE re-pins compiled into correlated bursts) \
                   instead of Poisson path flips.")
  in
  let run (name, build) seed updates flows arrival_mean burst churn probe_every
      intent_churn shards kernel obs =
    let cfg = cfg_of ~seed ~obs ~intent_churn ~shards ~kernel () in
    let workload =
      { Harness.Scale.default_workload with
        wl_updates = updates; wl_flows = flows; wl_arrival_mean_ms = arrival_mean;
        wl_burst = burst; wl_churn = churn; wl_probe_every = probe_every }
    in
    Printf.printf "scale run on %s: %d updates over %d flows (seed %d, shards %d)\n"
      name updates flows seed shards;
    let r = Harness.Scale.run ~workload cfg (build ()) in
    Format.printf "%a@." Harness.Scale.pp r;
    if r.Harness.Scale.sr_violations <> [] then begin
      List.iter
        (fun v ->
          Printf.printf "  t=%.1fms flow=%d: %s\n" v.Harness.Invariants.v_time
            v.Harness.Invariants.v_flow v.Harness.Invariants.v_what)
        r.Harness.Scale.sr_violations;
      exit 1
    end
  in
  Cmd.v
    (cmd_info "scale"
       ~doc:
         "Drive a many-concurrent-update workload (Poisson arrival bursts, flow churn, \
          sampled Thm. 1-4 invariant probes) over a WAN and report completion-time \
          percentiles and kernel/controller throughput.")
    Term.(const run
          $ topo_arg ~default:("attmpls", Topo.Topologies.attmpls) ()
          $ seed_arg ~default:Harness.Run_config.default.seed
          $ updates_arg $ flows_arg $ arrival_arg $ burst_arg $ churn_arg $ probe_arg
          $ intent_churn_arg $ shards_arg $ kernel_arg $ obs_term)

(* --- traffic --- *)

let traffic_cmd =
  let updates_arg =
    Arg.(value & opt int Harness.Scale.default_workload.Harness.Scale.wl_updates
         & info [ "updates"; "u" ] ~docv:"N" ~doc:"Total updates to drive.")
  in
  let flows_arg =
    Arg.(value & opt int Harness.Scale.default_workload.Harness.Scale.wl_flows
         & info [ "flows" ] ~docv:"N" ~doc:"Concurrent flow population.")
  in
  let gap_arg =
    Arg.(value & opt float Harness.Traffic.default_workload.Harness.Traffic.tw_mean_gap_ms
         & info [ "gap-mean" ] ~docv:"MS" ~doc:"Per-flow mean inter-packet gap (ms).")
  in
  let constant_arg =
    Arg.(value & flag
         & info [ "constant-rate" ]
             ~doc:"Constant inter-packet gaps instead of Poisson.")
  in
  let stop_arg =
    Arg.(value & opt float Harness.Traffic.default_workload.Harness.Traffic.tw_stop_ms
         & info [ "stop" ] ~docv:"MS" ~doc:"Stop injecting at this simulated time.")
  in
  let run (name, build) seed updates flows gap_mean constant stop shards kernel obs =
    let cfg = cfg_of ~seed ~obs ~shards ~kernel () in
    let scale_workload =
      { Harness.Scale.default_workload with wl_updates = updates; wl_flows = flows }
    in
    let workload =
      { Harness.Traffic.default_workload with
        tw_mean_gap_ms = gap_mean; tw_poisson = not constant; tw_stop_ms = stop }
    in
    Printf.printf
      "traffic run on %s: probes racing %d updates over %d flows (seed %d)\n" name
      updates flows seed;
    let sr, ts = Harness.Traffic.run_scale ~scale_workload ~workload cfg (build ()) in
    Format.printf "%a@.%a@." Harness.Scale.pp sr Harness.Traffic.pp ts;
    if Harness.Traffic.violations ts > 0 || sr.Harness.Scale.sr_violations <> [] then begin
      Printf.printf "per-packet or structural consistency violations detected\n";
      exit 1
    end
  in
  Cmd.v
    (cmd_info "traffic"
       ~doc:
         "Race sustained per-flow probe traffic against the scale engine's update \
          bursts and audit every packet's trajectory for per-packet consistency \
          (old/new path, mixed, loops, blackholes), reporting delivery rate, latency \
          percentiles and a deterministic outcome digest.")
    Term.(const run
          $ topo_arg ~default:("attmpls", Topo.Topologies.attmpls) ()
          $ seed_arg ~default:Harness.Run_config.default.seed
          $ updates_arg $ flows_arg $ gap_arg $ constant_arg $ stop_arg $ shards_arg
          $ kernel_arg $ obs_term)

(* --- soak --- *)

let soak_cmd =
  let cycles_arg =
    Arg.(value & opt int Harness.Soak.default_config.Harness.Soak.sk_cycles
         & info [ "cycles" ] ~docv:"N" ~doc:"Number of soak cycles.")
  in
  let cycle_ms_arg =
    Arg.(value & opt float Harness.Soak.default_config.Harness.Soak.sk_cycle_ms
         & info [ "cycle-ms" ] ~docv:"MS" ~doc:"Length of one cycle (simulated ms).")
  in
  let population_arg =
    Arg.(value & opt int Harness.Soak.default_config.Harness.Soak.sk_population
         & info [ "flows" ] ~docv:"N" ~doc:"Concurrent flow population.")
  in
  let updates_arg =
    Arg.(value & opt int Harness.Soak.default_config.Harness.Soak.sk_updates_per_cycle
         & info [ "updates-per-cycle"; "u" ] ~docv:"N" ~doc:"Updates pushed per cycle.")
  in
  let gap_arg =
    Arg.(value & opt float Harness.Soak.default_config.Harness.Soak.sk_probe_gap_ms
         & info [ "gap-mean" ] ~docv:"MS" ~doc:"Per-flow mean probe gap (ms).")
  in
  let fault_arg =
    Arg.(value & opt float Harness.Soak.default_config.Harness.Soak.sk_control_fault_prob
         & info [ "fault-prob" ] ~docv:"P"
             ~doc:"Per-message control-plane fault probability in the window.")
  in
  let quick_arg =
    Arg.(value & flag
         & info [ "quick" ] ~doc:"CI-sized preset (tens of thousands of probes).")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print the per-cycle leak readings.")
  in
  let churn_arg =
    Arg.(value
         & opt (enum [ ("poisson", false); ("intent", true) ]) false
         & info [ "churn" ] ~docv:"KIND"
             ~doc:"Churn source: $(b,poisson) flips random flow pairs \
                   independently; $(b,intent) drives seeded drain/undrain \
                   maintenance cycles and TE re-pins through the intent \
                   compiler, one correlated burst per event.")
  in
  let run (name, build) seed cycles cycle_ms population updates gap fault quick verbose
      intent_churn shards kernel obs =
    let base =
      if quick then Harness.Soak.quick_config else Harness.Soak.default_config
    in
    let config =
      if quick then base
      else
        { base with
          Harness.Soak.sk_cycles = cycles; sk_cycle_ms = cycle_ms;
          sk_population = population; sk_updates_per_cycle = updates;
          sk_probe_gap_ms = gap; sk_control_fault_prob = fault }
    in
    let cfg = cfg_of ~seed ~obs ~intent_churn ~shards ~kernel () in
    Printf.printf
      "soak run on %s: %d cycles x %.0f ms, %d flows, faults + %s churn + probes (seed %d)\n"
      name config.Harness.Soak.sk_cycles config.Harness.Soak.sk_cycle_ms
      config.Harness.Soak.sk_population
      (if intent_churn then "intent" else "poisson")
      seed;
    let r = Harness.Soak.run ~config cfg (build ()) in
    Format.printf "%a@." Harness.Soak.pp r;
    if verbose || not (Harness.Soak.ok r) then
      List.iter print_endline (Harness.Soak.report_lines r);
    if not (Harness.Soak.ok r) then begin
      Printf.printf "soak SLO breach\n";
      exit 1
    end
  in
  Cmd.v
    (cmd_info "soak"
       ~doc:
         "Long-horizon soak: churn + rolling faults + sustained probe audits, cycle \
          after cycle, with leak and stuck-update readings at every cycle boundary. \
          Exits nonzero on any SLO breach (violation, stuck update or leak).")
    Term.(const run
          $ topo_arg ()
          $ seed_arg ~default:Harness.Run_config.default.seed
          $ cycles_arg $ cycle_ms_arg $ population_arg $ updates_arg $ gap_arg
          $ fault_arg $ quick_arg $ verbose_arg $ churn_arg $ shards_arg $ kernel_arg
          $ obs_term)

(* --- intent --- *)

let intent_cmd =
  let mode_arg =
    Arg.(required
         & pos 0
             (some (enum [ ("compile", `Compile); ("diff", `Diff); ("run", `Run) ]))
             None
         & info [] ~docv:"MODE"
             ~doc:"$(b,compile) prints the concrete path assignment; $(b,diff) \
                   applies the --event stream incrementally and prints every \
                   diff; $(b,run) additionally lowers each diff into one \
                   correlated update burst on a simulated world and audits it \
                   with live probe traffic (exit 1 on any violation).")
  in
  let file_arg =
    Arg.(required & opt (some file) None
         & info [ "file"; "f" ] ~docv:"FILE"
             ~doc:"Intent program (see examples/*.intent for the syntax).")
  in
  let event_arg =
    Arg.(value & opt_all string []
         & info [ "event"; "e" ] ~docv:"EVENT"
             ~doc:"Event to apply, repeatable, in order: 'drain U V', \
                   'undrain U V', 'link-down U V', 'link-up U V', \
                   'node-down X', 'node-up X', 'capacity U V C', \
                   'flow <intent line>' (add/replace), 'remove NAME'.")
  in
  let parse_event s =
    let fail () = failwith (Printf.sprintf "unparseable event %S" s) in
    let num w = match int_of_string_opt w with Some n -> n | None -> fail () in
    match String.split_on_char ' ' s |> List.filter (fun w -> w <> "") with
    | [ "drain"; u; v ] -> Intent.Compiler.Drain (num u, num v)
    | [ "undrain"; u; v ] -> Intent.Compiler.Undrain (num u, num v)
    | [ "link-down"; u; v ] -> Intent.Compiler.Link_down (num u, num v)
    | [ "link-up"; u; v ] -> Intent.Compiler.Link_up (num u, num v)
    | [ "node-down"; x ] -> Intent.Compiler.Node_down (num x)
    | [ "node-up"; x ] -> Intent.Compiler.Node_up (num x)
    | [ "capacity"; u; v; c ] ->
      (match float_of_string_opt c with
      | Some c -> Intent.Compiler.Capacity_set (num u, num v, c)
      | None -> fail ())
    | "flow" :: _ ->
      (match Intent.Lang.of_string s with
      | Ok { Intent.Lang.flows = [ fi ]; _ } -> Intent.Compiler.Set_flow fi
      | _ -> fail ())
    | [ "remove"; n ] -> Intent.Compiler.Remove_flow n
    | _ -> fail ()
  in
  let path_str p = String.concat "-" (List.map string_of_int p) in
  let members_str = function
    | [] -> "(unroutable)"
    | ms -> String.concat " | " (List.map path_str ms)
  in
  let print_assignment comp =
    List.iter
      (fun (name, ms) -> Printf.printf "  %-12s %s\n" name (members_str ms))
      (Intent.Compiler.assignment comp);
    (match Intent.Compiler.degraded comp with
    | [] -> ()
    | d -> Printf.printf "  degraded: %s\n" (String.concat ", " d));
    Printf.printf "  (%d flows, %d member paths)\n"
      (Intent.Compiler.flow_count comp)
      (Intent.Compiler.member_count comp)
  in
  let print_diff ev (d : Intent.Compiler.diff) =
    Printf.printf "%s: %d/%d flows recompiled, %d changed\n"
      (Intent.Compiler.event_to_string ev)
      d.Intent.Compiler.d_recomputed d.Intent.Compiler.d_flow_count
      (List.length d.Intent.Compiler.d_changes);
    List.iter
      (fun (ch : Intent.Compiler.change) ->
        Printf.printf "  %-12s %s -> %s\n" ch.Intent.Compiler.ch_name
          (members_str ch.Intent.Compiler.ch_old)
          (members_str ch.Intent.Compiler.ch_new))
      d.Intent.Compiler.d_changes
  in
  let run mode (name, build) seed shards file events =
    try
      let topo = build () in
      let program =
        match Intent.Lang.load file with
        | Ok p -> p
        | Error e ->
          Printf.eprintf "%s: %s\n" file e;
          exit 2
      in
      let events = List.map parse_event events in
      match mode with
      | `Compile ->
        let comp = Intent.Compiler.create topo.Topo.Topologies.graph program in
        Printf.printf "%s compiled on %s:\n" file name;
        print_assignment comp
      | `Diff ->
        let comp = Intent.Compiler.create topo.Topo.Topologies.graph program in
        List.iter (fun ev -> print_diff ev (Intent.Compiler.apply comp ev)) events;
        Printf.printf "final assignment:\n";
        print_assignment comp
      | `Run ->
        let w = Harness.World.make ~seed ~shards topo in
        let g = Netsim.graph w.Harness.World.net in
        let plane = w.Harness.World.plane in
        let comp = Intent.Compiler.create g program in
        let bridge = Intent.Bridge.create () in
        let install ~flow_id ~src ~dst ~size ~path =
          ignore (Harness.World.install_flow ~flow_id w ~src ~dst ~size ~path)
        in
        let retire ~flow_id = Control.Plane.retire_flow plane ~flow_id in
        ignore
          (Intent.Bridge.lower bridge ~program
             ~diff:(Intent.Compiler.bootstrap_diff comp) ~install ~retire);
        Printf.printf "%s on %s: %d member flows installed (seed %d)\n" file name
          (Intent.Compiler.member_count comp) seed;
        let tr = Harness.Traffic.attach w in
        Harness.Traffic.start tr;
        let stop = ref 200.0 in
        Harness.Traffic.inject_until tr ~stop_ms:!stop;
        ignore (Harness.World.run ~until:150.0 w);
        let pushed = ref 0 in
        List.iter
          (fun ev ->
            let d = Intent.Compiler.apply comp ev in
            let reqs =
              Intent.Bridge.lower bridge
                ~program:(Intent.Compiler.program comp) ~diff:d ~install ~retire
            in
            let prepared = Control.Plane.prepare_batch plane reqs in
            print_diff ev d;
            Printf.printf "  -> burst of %d updates\n" (List.length prepared);
            List.iter (fun p -> Control.Plane.push plane p) prepared;
            pushed := !pushed + List.length prepared;
            stop := !stop +. 250.0;
            Harness.Traffic.inject_until tr ~stop_ms:!stop;
            ignore (Harness.World.run ~until:(!stop -. 50.0) w))
          events;
        ignore (Harness.World.run w);
        Harness.Traffic.drain tr;
        let s = Harness.Traffic.finalize tr in
        Format.printf "%a@." Harness.Traffic.pp s;
        let v = Harness.Traffic.violations s in
        Printf.printf "%d updates pushed, %d audit violations\n" !pushed v;
        if v > 0 then exit 1
    with Failure msg ->
      prerr_endline msg;
      exit 2
  in
  Cmd.v
    (cmd_info "intent"
       ~doc:
         "Compile a declarative intent program (shortest-path, waypoint, ECMP \
          spread, drains) to concrete member paths, replay topology/intent \
          events through the incremental recompiler, and optionally lower the \
          diffs into audited consistent-update bursts.")
    Term.(const run $ mode_arg $ topo_arg () $ seed_arg ~default:7 $ shards_arg
          $ file_arg $ event_arg)

(* --- top --- *)

let top_cmd =
  let quick_arg =
    Arg.(value & flag
         & info [ "quick" ] ~doc:"CI-sized soak preset instead of the full one.")
  in
  let cycles_arg =
    Arg.(value & opt (some int) None
         & info [ "cycles" ] ~docv:"N" ~doc:"Override the number of soak cycles.")
  in
  let run (name, build) seed quick cycles shards obs =
    let base =
      if quick then Harness.Soak.quick_config else Harness.Soak.default_config
    in
    let config =
      match cycles with
      | None -> base
      | Some n -> { base with Harness.Soak.sk_cycles = n }
    in
    let cfg = cfg_of ~seed ~obs ~live_top:true ~shards () in
    Printf.printf "top: soak on %s, %d cycles x %.0f ms, tick %.0f ms (seed %d)\n%!"
      name config.Harness.Soak.sk_cycles config.Harness.Soak.sk_cycle_ms
      (Option.value obs.ob_tick_ms ~default:Harness.Soak.default_tick_ms) seed;
    let r = Harness.Soak.run ~config cfg (build ()) in
    print_newline ();
    Format.printf "%a@." Harness.Soak.pp r;
    if not (Harness.Soak.ok r) then begin
      List.iter print_endline (Harness.Soak.report_lines r);
      exit 1
    end
  in
  Cmd.v
    (cmd_info "top"
       ~doc:
         "Run a soak with the live text dashboard: the rolling SLO time-series \
          (probe and completion rates, update-latency p50/p99, in-flight updates, \
          recovery activity, heap footprint) re-rendered at every simulated tick.")
    Term.(const run
          $ topo_arg ()
          $ seed_arg ~default:Harness.Run_config.default.seed
          $ quick_arg $ cycles_arg $ shards_arg $ obs_term)

(* --- import --- *)

let import_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE" ~doc:"Topology Zoo GraphML file.")
  in
  let run file seed runs =
    let cfg = cfg_of ~seed ~runs () in
    let name = Filename.remove_extension (Filename.basename file) in
    let topo = Topo.Graphml.to_topology ~name (Topo.Graphml.parse_file file) in
    let g = topo.Topo.Topologies.graph in
    Printf.printf "%s: %d nodes, %d edges (imported)\n" name (Topo.Graph.node_count g)
      (Topo.Graph.edge_count g);
    let old_path, new_path = Harness.Scenarios.single_flow_paths topo in
    Printf.printf "single-flow scenario: [%s] -> [%s]\n"
      (String.concat ";" (List.map string_of_int old_path))
      (String.concat ";" (List.map string_of_int new_path));
    let setup =
      { Harness.Scenarios.topo = (fun () -> topo); stragglers = true; congestion = false;
        headroom = 1.4; control = None }
    in
    summarize_runs cfg setup Harness.Scenarios.all_systems
      ~time_of:(fun setup sys ~seed ->
        Harness.Scenarios.single_flow_time setup sys ~old_path ~new_path ~seed)
  in
  Cmd.v
    (cmd_info "import"
       ~doc:"Import a Topology Zoo GraphML file and run the single-flow scenario on it.")
    Term.(const run $ file_arg $ seed_arg ~default:scenario_seed_base $ runs_arg)

let () =
  let doc = "P4Update (CoNEXT '21) reproduction toolkit" in
  exit
    (Cmd.eval
       (Cmd.group (cmd_info "p4update" ~doc)
          [ topo_cmd; single_cmd; multi_cmd; fig_cmd; trace_cmd; chaos_cmd; mc_cmd;
            scale_cmd; traffic_cmd; soak_cmd; intent_cmd; top_cmd; import_cmd ]))
