(** Shared experiment runners: one update-time measurement per system,
    on identical topologies, workloads and seeds (§9.1). *)

type system = P4u | Ez | Central

val system_name : system -> string
val all_systems : system list

(** Configuration of one run. *)
type setup = {
  topo : unit -> Topo.Topologies.t;
  stragglers : bool;        (** Exp(100 ms) rule installs (single-flow setup) *)
  congestion : bool;        (** capacity-gated moves (multi-flow setup) *)
  headroom : float;
      (** per-link capacity headroom over the workload's worst load (the
          multi-flow traffic sits "close to the network's capacity") *)
  control : Netsim.control_latency option;
      (** override (fat-tree uses a normal distribution); default Geo *)
}

val config_of : setup -> Netsim.config

(** [single_flow_time setup system ~old_path ~new_path ~seed] runs one
    single-flow update and returns the completion time in ms (update
    start → controller-received UFM).  Raises [Failure] if the update
    never completes. *)
val single_flow_time :
  ?update_type:P4update.Wire.update_type ->
  setup -> system -> old_path:int list -> new_path:int list -> seed:int -> float

(** [multi_flow_time setup system ~seed] draws the multi-flow workload of
    §9.1 (shortest → 2nd-shortest, gravity sizes near capacity) and
    returns the completion time of the last flow. *)
val multi_flow_time :
  ?update_type:P4update.Wire.update_type -> setup -> system -> seed:int -> float

(** [single_flow_paths topo] picks the single-flow scenario paths on a
    WAN: a long old path and an alternative that triggers segmentation
    (contains a backward segment when one exists). *)
val single_flow_paths : Topo.Topologies.t -> int list * int list

(** Number of runs used for the Fig. 7 CDFs (30 in the paper). *)
val runs : int
