(** Convenience builder that wires a topology, the P4Update switches and
    the controller into one simulated world. *)

type t = {
  sim : Dessim.Sim.t;
  net : Netsim.t;
  switches : P4update.Switch.t array;
  controller : P4update.Controller.t;
      (** shard 0's replica at [shards > 1]; kept for test surfaces that
          poke controller internals — harness code goes through [plane] *)
  plane : Control.Plane.t;
      (** the control plane: single delegation at [shards = 1], the
          sharded coordinator otherwise *)
  partition : Control.Partition.t option;  (** [Some] iff [shards > 1] *)
}

(** A flow to install at construction time: registered with the
    controller and its version-1 forwarding state installed on every
    node of [fs_path] (exactly what {!install_flow} does). *)
type flow_spec = { fs_src : int; fs_dst : int; fs_size : int; fs_path : int list }

(** [flow ~src ~dst ~path ()] builds a {!flow_spec} ([size] defaults to
    100). *)
val flow : ?size:int -> src:int -> dst:int -> path:int list -> unit -> flow_spec

(** [make ?seed ?config ?shards ?flows topo] builds the world (one
    switch per node) and installs every flow of [flows] in order.
    Declarative construction replaces make-then-[install_flow]
    sequences; installed flows are found again with {!find_flow} /
    {!flow_of_pair}.  [shards] (default 1) > 1 partitions the topology
    with {!Control.Partition.make} (seeded by [seed]) and fronts the
    network with a {!Control.Sharded} coordinator; [shards = 1] keeps
    the single controller, byte-identical to the pre-sharding plane.
    [kernel] (default [Heap]) picks the event-queue implementation; the
    [Calendar] kernel also switches [P4update.Wire] onto its zero-alloc
    fast path (pooled frames + byte-aligned codecs) and installs the
    direct control classifier — both deliver identical results, only
    faster. *)
val make :
  ?seed:int ->
  ?config:Netsim.config ->
  ?kernel:Dessim.Sim.kernel ->
  ?shards:int ->
  ?flows:flow_spec list ->
  Topo.Topologies.t ->
  t

(** [install_flow w ~src ~dst ~size ~path] registers the flow with the
    controller and installs its version-1 forwarding state on every node
    of [path].  Returns the flow record.  [?flow_id] overrides the
    pair-derived id (see {!P4update.Controller.register_flow}); the
    intent bridge needs it so ECMP members of one pair get distinct
    identities. *)
val install_flow :
  ?flow_id:int ->
  t ->
  src:int ->
  dst:int ->
  size:int ->
  path:int list ->
  P4update.Controller.flow

(** [find_flow w ~flow_id] looks the flow up in the controller's DB. *)
val find_flow : t -> flow_id:int -> P4update.Controller.flow option

(** [flow_of_pair w ~src ~dst] finds the flow installed for that pair
    (the id is {!Topo.Traffic.flow_id_of_pair} masked into the flow
    space, the same derivation {!install_flow} uses). *)
val flow_of_pair : t -> src:int -> dst:int -> P4update.Controller.flow option

(** All flows in the controller's DB, sorted by id. *)
val flows : t -> P4update.Controller.flow list

(** [run w] drains the event queue (optionally bounded). *)
val run : ?until:float -> t -> int
