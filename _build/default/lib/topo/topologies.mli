(** Topology catalogue used by the paper's evaluation (§9.1).

    WAN latencies follow the paper: great-circle distance divided by the
    propagation speed in optical fibre (2·10^5 km/s = 200 km/ms).  Node and
    edge counts of the four real networks match the annotations of Fig. 8:
    B4 (12, 19), Internet2 (16, 26), AttMpls (25, 56), Chinanet (38, 62).
    Coordinates are approximations of the real sites; for AttMpls and
    Chinanet (used only for control-plane preparation benchmarks) the
    wiring is a deterministic ring-plus-chords mesh of the right size. *)

type kind = Wan | Datacenter | Synthetic

type t = {
  name : string;
  kind : kind;
  graph : Graph.t;
  node_names : string array;
  controller : int;  (** node hosting the controller (centroid for WANs) *)
}

(** The 8-node synthetic topology of Fig. 1 (20 ms homogeneous links).
    Old path v0→v4→v2→v7, new path v0→v1→…→v7. *)
val fig1 : unit -> t

(** Old and new flow paths of the Fig. 1 scenario. *)
val fig1_old_path : int list
val fig1_new_path : int list

(** The 5-node scenario topology of Fig. 2 with the three configurations
    (a), (b), (c) given as forwarding paths from v0 to v4. *)
val fig2 : unit -> t

val fig2_config_a : int list
val fig2_config_b : int list
val fig2_config_c : int list

(** Six-node network for the skip-ahead experiment of §4.2/Fig. 4. *)
val six_node : unit -> t

val b4 : unit -> t
val internet2 : unit -> t
val attmpls : unit -> t
val chinanet : unit -> t

(** Fat-tree with parameter [k] (default 4): [5k²/4] switches.  Links have
    a homogeneous 0.05 ms latency; control latency is modelled separately
    (normal distribution, see {!Netsim}). *)
val fat_tree : ?k:int -> unit -> t

(** All topologies used in Fig. 8, in paper order. *)
val fig8_set : unit -> t list

(** [haversine_km (lat1, lon1) (lat2, lon2)] great-circle distance. *)
val haversine_km : float * float -> float * float -> float

(** Distance-derived latency in milliseconds. *)
val geo_latency_ms : float * float -> float * float -> float
