lib/harness/svg.mli: Experiments
