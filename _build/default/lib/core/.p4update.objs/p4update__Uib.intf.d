lib/core/uib.mli: P4rt Wire
