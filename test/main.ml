let () =
  Alcotest.run "p4update"
    [
      ("dessim", Test_dessim.suite);
      ("graph", Test_graph.suite);
      ("topologies", Test_topologies.suite);
      ("graphml", Test_graphml.suite);
      ("stats-traffic", Test_stats_traffic.suite);
      ("svg", Test_svg.suite);
      ("p4rt", Test_p4rt.suite);
      ("netsim", Test_netsim.suite);
      ("segment-label", Test_segment_label.suite);
      ("verify", Test_verify.suite);
      ("congestion", Test_congestion.suite);
      ("controller", Test_controller.suite);
      ("sl-update", Test_sl_update.suite);
      ("dl-update", Test_dl_update.suite);
      ("consistency", Test_consistency.suite);
      ("resilience", Test_resilience.suite);
      ("chaos", Test_chaos.suite);
      ("consecutive-dl", Test_consecutive_dl.suite);
      ("two-phase", Test_two_phase.suite);
      ("inconsistency", Test_inconsistency.suite);
      ("baselines", Test_baselines.suite);
      ("ez-internals", Test_ez_internals.suite);
      ("obs", Test_obs.suite);
      ("observability", Test_observability.suite);
      ("mc", Test_mc.suite);
      ("scale", Test_scale.suite);
      ("control", Test_control.suite);
      ("traffic", Test_traffic.suite);
      ("soak", Test_soak.suite);
      ("intent", Test_intent.suite);
    ]
