(** The first-class [Control_plane] interface (DESIGN §13).

    A record of the operations every harness needs from a control plane
    — flow DB access, prepare/push, abort/rollback, report and push
    hooks, §11 recovery, fingerprinting — so Scale, Traffic, Soak,
    Chaos, the Intent bridge and the model checker depend on this
    interface rather than the concrete {!P4update.Controller} module.

    Two constructors exist: {!single} wraps one controller with pure 1:1
    delegation (shards=1 is byte-identical to calling the controller
    directly), and {!Sharded.plane} fronts a k-shard coordinator. *)

module C = P4update.Controller
module Wire = P4update.Wire

type t = {
  shards : int;
  controllers : C.t array;
      (** shard id -> controller replica; a single entry at shards=1 *)
  partition : Partition.t option;  (** [None] at shards=1 *)
  shard_of_node : int -> int;
  register_flow :
    ?version:int ->
    ?flow_id:int ->
    src:int ->
    dst:int ->
    size:int ->
    path:int list ->
    unit ->
    C.flow;
  find_flow : flow_id:int -> C.flow option;
  flows : unit -> C.flow list;
  retire_flow : flow_id:int -> unit;
  prepare :
    flow_id:int ->
    new_path:int list ->
    ?update_type:Wire.update_type ->
    unit ->
    C.prepared;
  prepare_batch : (int * int list) list -> C.prepared list;
  push : C.prepared -> unit;
  update_flow :
    flow_id:int ->
    new_path:int list ->
    ?update_type:Wire.update_type ->
    unit ->
    int;
  abort_update : ?reason:string -> flow_id:int -> unit -> bool;
  aborted_version : flow_id:int -> int option;
  on_push : (flow_id:int -> version:int -> unit) -> unit;
  on_report : (C.report -> unit) -> unit;
  completion_time : flow_id:int -> version:int -> float option;
  enable_recovery :
    ?timeout_ms:float -> ?max_retries:int -> ?deadline_ms:float -> unit -> unit;
  recovery_stats : unit -> C.recovery_stats option;
  alarm_count : unit -> int;
  fingerprint : unit -> int;
}

val single : C.t -> t
(** Wrap one controller; every field delegates 1:1. *)

(** {2 Call-style wrappers}

    So call sites read like the Controller calls they replaced:
    [Plane.update_flow p ~flow_id ~new_path ()]. *)

val shards : t -> int
val controller : t -> int -> C.t
val partition : t -> Partition.t option
val shard_of_node : t -> int -> int

val register_flow :
  ?version:int ->
  ?flow_id:int ->
  t ->
  src:int ->
  dst:int ->
  size:int ->
  path:int list ->
  C.flow

val find_flow : t -> flow_id:int -> C.flow option
val flows : t -> C.flow list
val retire_flow : t -> flow_id:int -> unit

val prepare :
  t ->
  flow_id:int ->
  new_path:int list ->
  ?update_type:Wire.update_type ->
  unit ->
  C.prepared

val prepare_batch : t -> (int * int list) list -> C.prepared list
val push : t -> C.prepared -> unit

val update_flow :
  t ->
  flow_id:int ->
  new_path:int list ->
  ?update_type:Wire.update_type ->
  unit ->
  int

val abort_update : ?reason:string -> t -> flow_id:int -> bool
val aborted_version : t -> flow_id:int -> int option
val on_push : t -> (flow_id:int -> version:int -> unit) -> unit
val on_report : t -> (C.report -> unit) -> unit
val completion_time : t -> flow_id:int -> version:int -> float option

val enable_recovery :
  ?timeout_ms:float -> ?max_retries:int -> ?deadline_ms:float -> t -> unit

val recovery_stats : t -> C.recovery_stats option
val alarm_count : t -> int
val fingerprint : t -> int
