(* End-to-end tests for dual-layer updates (Alg. 2, §3.2, §7.2). *)

open P4update

let fig1 () = Topo.Topologies.fig1 ()

let setup () =
  let w = Harness.World.make (fig1 ()) in
  let flow =
    Harness.World.install_flow w ~src:0 ~dst:7 ~size:100 ~path:Topo.Topologies.fig1_old_path
  in
  (w, flow)

let path_of_trace w ~flow_id ~src =
  match Harness.Fwdcheck.trace w.Harness.World.net w.Harness.World.switches ~flow_id ~src with
  | Harness.Fwdcheck.Reaches_egress path -> path
  | o -> Alcotest.failf "flow broken: %a" Harness.Fwdcheck.pp_outcome o

let test_segmentation_fig1 () =
  let seg =
    Segment.compute ~old_path:Topo.Topologies.fig1_old_path
      ~new_path:Topo.Topologies.fig1_new_path
  in
  Alcotest.(check (list int)) "gateways" [ 0; 2; 4; 7 ]
    (List.sort compare seg.Segment.gateways);
  Alcotest.(check int) "three segments" 3 (List.length seg.Segment.segments);
  let directions =
    List.map (fun s -> (s.Segment.ingress_gateway, s.Segment.egress_gateway, s.Segment.direction))
      seg.Segment.segments
  in
  Alcotest.(check bool) "fig1 segment structure" true
    (directions
     = [
         (0, 2, Segment.Forward);
         (2, 4, Segment.Backward);
         (4, 7, Segment.Forward);
       ])

let test_dl_converges () =
  let w, flow = setup () in
  let version =
    Controller.update_flow w.controller ~flow_id:flow.flow_id
      ~new_path:Topo.Topologies.fig1_new_path ~update_type:Wire.Dl ()
  in
  let _ = Harness.World.run w in
  let path = path_of_trace w ~flow_id:flow.flow_id ~src:0 in
  Alcotest.(check (list int)) "converged to new path" Topo.Topologies.fig1_new_path path;
  Alcotest.(check int) "no alarms" 0 (Controller.alarm_count w.controller);
  match Controller.completion_time w.controller ~flow_id:flow.flow_id ~version with
  | Some _ -> ()
  | None -> Alcotest.fail "no success UFM received"

let test_dl_consistent_throughout () =
  let w, flow = setup () in
  let _ =
    Controller.update_flow w.controller ~flow_id:flow.flow_id
      ~new_path:Topo.Topologies.fig1_new_path ~update_type:Wire.Dl ()
  in
  while Dessim.Sim.step w.sim do
    let outcome =
      Harness.Fwdcheck.trace w.net w.switches ~flow_id:flow.flow_id ~src:0
    in
    if not (Harness.Fwdcheck.is_consistent outcome) then
      Alcotest.failf "inconsistent state mid-update: %a" Harness.Fwdcheck.pp_outcome outcome
  done

let test_dl_labels_inherited () =
  (* After convergence every node of the new path carries the egress' old
     distance label 0 (§3.2 intuition: one segment id remains). *)
  let w, flow = setup () in
  let _ =
    Controller.update_flow w.controller ~flow_id:flow.flow_id
      ~new_path:Topo.Topologies.fig1_new_path ~update_type:Wire.Dl ()
  in
  let _ = Harness.World.run w in
  List.iter
    (fun node ->
      let uib = Switch.uib w.switches.(node) in
      Alcotest.(check int)
        (Printf.sprintf "node %d inherited label 0" node)
        0
        (Uib.dist_prev uib flow.flow_id))
    Topo.Topologies.fig1_new_path

let test_dl_inside_nodes_update_early () =
  (* Nodes strictly inside segments must commit before all gateways have
     (the parallelism that motivates DL).  With a large per-rule install
     delay the inside nodes of different segments commit concurrently. *)
  let config = { Netsim.default_config with rule_update_mean_ms = Some 100.0 } in
  let w = Harness.World.make ~config (fig1 ()) in
  let flow =
    Harness.World.install_flow w ~src:0 ~dst:7 ~size:100 ~path:Topo.Topologies.fig1_old_path
  in
  let commit_times = Hashtbl.create 8 in
  Array.iter
    (fun sw ->
      Switch.on_commit sw (fun ~flow_id:_ ~version:_ ~time ->
          if not (Hashtbl.mem commit_times (Switch.node sw)) then
            Hashtbl.add commit_times (Switch.node sw) time))
    w.switches;
  let _ =
    Controller.update_flow w.controller ~flow_id:flow.flow_id
      ~new_path:Topo.Topologies.fig1_new_path ~update_type:Wire.Dl ()
  in
  let _ = Harness.World.run w in
  let time_of node =
    match Hashtbl.find_opt commit_times node with
    | Some t -> t
    | None -> Alcotest.failf "node %d never committed" node
  in
  (* v1 (inside the upstream forward segment) must not wait for the
     backward gateway v2's commit. *)
  Alcotest.(check bool) "v1 commits before gateway v2" true (time_of 1 < time_of 2);
  (* v3 (inside the backward segment) must not wait for v2 either. *)
  Alcotest.(check bool) "v3 commits before gateway v2" true (time_of 3 < time_of 2)

let test_dl_gateway_ordering () =
  (* The backward-segment ingress gateway v2 may only commit after the
     downstream gateway v4 (otherwise a loop would form, §3.2). *)
  let w, flow = setup () in
  let order = ref [] in
  Array.iter
    (fun sw ->
      Switch.on_commit sw (fun ~flow_id:_ ~version:_ ~time:_ ->
          order := Switch.node sw :: !order))
    w.switches;
  let _ =
    Controller.update_flow w.controller ~flow_id:flow.flow_id
      ~new_path:Topo.Topologies.fig1_new_path ~update_type:Wire.Dl ()
  in
  let _ = Harness.World.run w in
  let order = List.rev !order in
  let index node =
    let rec find i = function
      | [] -> Alcotest.failf "node %d never committed" node
      | v :: rest -> if v = node then i else find (i + 1) rest
    in
    find 0 order
  in
  Alcotest.(check bool) "v4 before v2" true (index 4 < index 2);
  Alcotest.(check bool) "v2 before v0... (v0 may commit on v2's proposal only afterwards)"
    true
    (index 2 < List.length order)

let test_dl_then_dl_needs_sl () =
  (* Thm. 4 / §7.5: after a DL update the next one must be SL; the policy
     must enforce it. *)
  let w, flow = setup () in
  let _ =
    Controller.update_flow w.controller ~flow_id:flow.flow_id
      ~new_path:Topo.Topologies.fig1_new_path ~update_type:Wire.Dl ()
  in
  let _ = Harness.World.run w in
  let chosen =
    Controller.choose_type w.controller ~old_path:Topo.Topologies.fig1_new_path
      ~new_path:Topo.Topologies.fig1_old_path ~last_type:Wire.Dl
  in
  Alcotest.(check bool) "policy forces SL after DL" true (chosen = Wire.Sl);
  (* And an SL follow-up indeed converges. *)
  let _ =
    Controller.update_flow w.controller ~flow_id:flow.flow_id
      ~new_path:Topo.Topologies.fig1_old_path ~update_type:Wire.Sl ()
  in
  let _ = Harness.World.run w in
  let path = path_of_trace w ~flow_id:flow.flow_id ~src:0 in
  Alcotest.(check (list int)) "SL after DL converges" Topo.Topologies.fig1_old_path path

let test_dl_faster_than_sl_under_stragglers () =
  (* The headline claim behind Fig. 7 single-flow: with straggler nodes
     (Exp(100 ms) rule installs), DL parallelism beats SL. *)
  let run update_type seed =
    let config = { Netsim.default_config with rule_update_mean_ms = Some 100.0 } in
    let w = Harness.World.make ~seed ~config (fig1 ()) in
    let flow =
      Harness.World.install_flow w ~src:0 ~dst:7 ~size:100
        ~path:Topo.Topologies.fig1_old_path
    in
    let version =
      Controller.update_flow w.controller ~flow_id:flow.flow_id
        ~new_path:Topo.Topologies.fig1_new_path ~update_type ()
    in
    let _ = Harness.World.run w in
    match Controller.completion_time w.controller ~flow_id:flow.flow_id ~version with
    | Some t -> t
    | None -> Alcotest.fail "update did not complete"
  in
  let seeds = List.init 10 (fun i -> 42 + i) in
  let sl = Harness.Stats.mean (List.map (run Wire.Sl) seeds) in
  let dl = Harness.Stats.mean (List.map (run Wire.Dl) seeds) in
  Alcotest.(check bool)
    (Printf.sprintf "DL (%.1f ms) beats SL (%.1f ms) with stragglers" dl sl)
    true (dl < sl)

let suite =
  [
    Alcotest.test_case "fig. 1 segmentation" `Quick test_segmentation_fig1;
    Alcotest.test_case "DL update converges to the new path" `Quick test_dl_converges;
    Alcotest.test_case "DL keeps consistency after every event" `Quick
      test_dl_consistent_throughout;
    Alcotest.test_case "DL labels all inherit the egress label" `Quick test_dl_labels_inherited;
    Alcotest.test_case "inside nodes update before backward gateways" `Quick
      test_dl_inside_nodes_update_early;
    Alcotest.test_case "backward gateway waits for downstream" `Quick test_dl_gateway_ordering;
    Alcotest.test_case "policy forces SL after DL (Thm. 4)" `Quick test_dl_then_dl_needs_sl;
    Alcotest.test_case "DL beats SL under stragglers" `Slow
      test_dl_faster_than_sl_under_stragglers;
  ]
