test/test_baselines.ml: Alcotest Baselines Dessim Harness List Netsim Option P4update Printf Topo
