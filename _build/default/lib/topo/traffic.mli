(** Traffic synthesis for the multi-flow scenario (§9.1).

    Flow sizes follow Roughan's simple gravity model: the demand between a
    source [s] and destination [t] is proportional to [w(s) * w(t)] for
    per-node weights [w].  The generated traffic is scaled so that it is
    close to — but feasible within — the network capacity on both the old
    and the new paths, regenerating when infeasible, as the paper does. *)

type flow = {
  flow_id : int;
  src : int;
  dst : int;
  size : float;
  old_path : int list;
  new_path : int list;
}

(** [multi_flow_workload rng graph] draws, for every node, a uniformly
    random distinct destination; the old path is the shortest path and the
    new path the 2nd-shortest (Yen).  Nodes whose 2nd-shortest path does
    not exist are skipped.  Sizes come from the gravity model, rescaled by
    [utilization] (default 0.98) of the most loaded link so that both the
    old and the new assignment respect capacity. *)
val multi_flow_workload :
  ?utilization:float -> Random.State.t -> Graph.t -> flow list

(** [link_loads graph flows ~use_new] sums flow sizes per directed link
    under the old ([use_new = false]) or new paths.  Returns an association
    list over directed node pairs. *)
val link_loads : Graph.t -> flow list -> use_new:bool -> ((int * int) * float) list

(** [feasible graph flows ~use_new] checks capacity on every link. *)
val feasible : Graph.t -> flow list -> use_new:bool -> bool

(** [tighten_capacities graph flows ~headroom] sets the capacity of every
    link used by the workload to [max(old load, new load) * headroom]:
    both assignments stay feasible, but most transitions now depend on
    other flows moving away first — the inter-flow dependency pressure of
    the paper's multi-flow scenario ("the generated traffic aims to be
    close to the network's capacity"). *)
val tighten_capacities : Graph.t -> flow list -> headroom:float -> unit

(** [transition_schedulable graph flows] checks that a one-move-at-a-time
    scheduler (each flow updating egress-first, as every system here does)
    can migrate the whole workload within the current link capacities —
    i.e. the inter-flow dependency graph has no unresolvable cycle.  The
    paper repeats traffic generation when the workload is infeasible. *)
val transition_schedulable : Graph.t -> flow list -> bool

(** Deterministic flow identifier from the (src, dst) pair — the "hash"
    the ingress switch computes for the FRM (§8, Appendix B). *)
val flow_id_of_pair : src:int -> dst:int -> int
