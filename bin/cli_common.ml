(* Shared CLI building blocks.

   Every subcommand of [p4update_cli] historically copy-pasted its own
   --seed/--topo/--runs specs and observability flags; they are defined
   once here so all subcommands (and the bench front end) agree on flag
   names, docs and defaults, and new cross-cutting flags (--shards) land
   everywhere at once.

   Exit codes, uniform across subcommands (see [exits]):
     0  success
     1  consistency / audit / SLO failure: Thm. 1-4 violation, per-packet
        audit violation, convergence failure, soak SLO breach, or (mc) a
        counterexample verdict inconsistent with --unsafe
     2  usage or input errors: unparseable intent programs/events
        (cmdliner itself reports flag errors as 124)
     3  bench regression: a --check run outside the baseline's tolerance
        band (the bench binary only)                                      *)

open Cmdliner

let topologies =
  [
    ("fig1", Topo.Topologies.fig1);
    ("fig2", Topo.Topologies.fig2);
    ("six-node", Topo.Topologies.six_node);
    ("b4", Topo.Topologies.b4);
    ("internet2", Topo.Topologies.internet2);
    ("attmpls", Topo.Topologies.attmpls);
    ("chinanet", Topo.Topologies.chinanet);
    ("fat-tree", fun () -> Topo.Topologies.fat_tree ());
  ]

let topo_conv =
  let parse s =
    match List.assoc_opt s topologies with
    | Some f -> Ok (s, f)
    | None ->
      Error (`Msg (Printf.sprintf "unknown topology %S (try: %s)" s
                     (String.concat ", " (List.map fst topologies))))
  in
  Arg.conv (parse, fun fmt (name, _) -> Format.pp_print_string fmt name)

let topo_arg ?(default = ("b4", Topo.Topologies.b4)) () =
  Arg.(value & opt topo_conv default
       & info [ "topo"; "t" ] ~docv:"NAME" ~doc:"Topology to use.")

let runs_arg =
  Arg.(value & opt int 10 & info [ "runs"; "r" ] ~docv:"N" ~doc:"Number of seeded runs.")

let seed_arg ~default =
  Arg.(value & opt int default & info [ "seed" ] ~docv:"N" ~doc:"Base simulation seed.")

(* The scenario runners historically number their runs 1000, 1001, ... *)
let scenario_seed_base = 1000

let shards_arg =
  Arg.(value & opt int 1
       & info [ "shards" ] ~docv:"N"
           ~doc:"Controller replicas (topology domains).  1 keeps the single \
                 controller (byte-identical to the pre-sharding plane); N>1 \
                 partitions the topology, routes each update to the shard \
                 owning the flow's source domain, and stitches cross-domain \
                 updates with DL labels at the gateway switches.")

let kernel_conv =
  let parse = function
    | "heap" -> Ok Dessim.Sim.Heap
    | "calendar" -> Ok Dessim.Sim.Calendar
    | s -> Error (`Msg (Printf.sprintf "unknown kernel %S (heap | calendar)" s))
  in
  let print fmt = function
    | Dessim.Sim.Heap -> Format.pp_print_string fmt "heap"
    | Dessim.Sim.Calendar -> Format.pp_print_string fmt "calendar"
  in
  Arg.conv (parse, print)

let kernel_arg =
  Arg.(value & opt kernel_conv Dessim.Sim.Heap
       & info [ "kernel" ] ~docv:"KERNEL"
           ~doc:"Event-queue kernel: $(b,heap) (the pinned reference path, \
                 default) or $(b,calendar) (O(1)-amortized calendar queue \
                 plus the zero-alloc wire path — pooled frames and \
                 byte-aligned codecs).  Both deliver events in identical \
                 (time, seq) order; only the cost changes.")

(* Shared observability flags: the long-horizon harnesses (scale,
   traffic, soak, chaos, top) all take the same four. *)
type obs_flags = {
  ob_no_recorder : bool;
  ob_incident_dir : string option;
  ob_tick_ms : float option;
  ob_series_out : string option;
}

let obs_term =
  let no_recorder_arg =
    Arg.(value & flag
         & info [ "no-recorder" ]
             ~doc:"Disable the always-on flight recorder for this run.")
  in
  let incident_dir_arg =
    Arg.(value & opt (some string) None
         & info [ "incident-dir" ] ~docv:"DIR"
             ~doc:"Dump the flight recorder's retained window here as a \
                   Perfetto-loadable incident snapshot whenever a trigger fires \
                   (invariant violation, abort, give-up, stuck update, leak, \
                   SLO breach).")
  in
  let tick_ms_arg =
    Arg.(value & opt (some float) None
         & info [ "tick-ms" ] ~docv:"MS"
             ~doc:"Rolling SLO time-series window length in simulated ms \
                   (default: the harness's own).")
  in
  let series_out_arg =
    Arg.(value & opt (some string) None
         & info [ "series-out" ] ~docv:"FILE"
             ~doc:"Export the rolling SLO time-series as JSONL (one object per \
                   window).")
  in
  Term.(const (fun ob_no_recorder ob_incident_dir ob_tick_ms ob_series_out ->
            { ob_no_recorder; ob_incident_dir; ob_tick_ms; ob_series_out })
        $ no_recorder_arg $ incident_dir_arg $ tick_ms_arg $ series_out_arg)

(* One Run_config per invocation: flags override [Run_config.default]. *)
let cfg_of ~seed ?runs ?iterations ?congestion ?trace_sink ?fault_plan
    ?reorder_window_ms ?obs ?live_top ?intent_churn ?shards ?kernel () =
  let recorder, incident_dir, tick_ms, series_out =
    match obs with
    | None -> (None, None, None, None)
    | Some o ->
      (Some (not o.ob_no_recorder), o.ob_incident_dir, o.ob_tick_ms, o.ob_series_out)
  in
  Harness.Run_config.make ~seed ?runs ?iterations ?congestion ?trace_sink
    ?fault_plan ?reorder_window_ms ?recorder ?incident_dir ?tick_ms ?series_out
    ?live_top ?intent_churn ?shards ?kernel ()

let system_conv =
  let parse = function
    | "p4update" -> Ok (Some Harness.Scenarios.P4u)
    | "ez-segway" | "ez" -> Ok (Some Harness.Scenarios.Ez)
    | "central" -> Ok (Some Harness.Scenarios.Central)
    | "all" -> Ok None
    | s -> Error (`Msg (Printf.sprintf "unknown system %S (p4update | ez | central | all)" s))
  in
  let print fmt = function
    | Some s -> Format.pp_print_string fmt (Harness.Scenarios.system_name s)
    | None -> Format.pp_print_string fmt "all"
  in
  Arg.conv (parse, print)

let system_arg =
  Arg.(value & opt system_conv None
       & info [ "system"; "s" ] ~docv:"SYS" ~doc:"System to run (default: all three).")

let systems_of = function
  | Some s -> [ s ]
  | None -> Harness.Scenarios.all_systems

let exits =
  Cmd.Exit.info 1
    ~doc:"on a consistency failure: a Thm. 1-4 invariant violation, a \
          per-packet audit violation, convergence failure or soak SLO breach."
  :: Cmd.Exit.info 2 ~doc:"on unparseable input (intent programs, events)."
  :: Cmd.Exit.defaults

(* [Cmd.info] with the uniform exit-code table attached. *)
let cmd_info name ~doc = Cmd.info name ~doc ~exits

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc
