(* Sharded coordinator: k controller replicas over one network.

   Flow ownership is by source domain: a flow lives in exactly the shard
   owning [Partition.domain_of p src].  The coordinator

   - re-points the network's single control-channel handler at a router
     that parses each FRM/UFM once and dispatches to the owning shard's
     [Controller.handle] (UFMs to the shard holding the flow, FRMs to
     the shard owning the reporting flow's source);

   - routes prepare/push/abort/retire calls the same way, so every
     replica only ever touches its own Flow DB slice;

   - stitches cross-domain updates with DL labels: when a new path
     leaves the owning domain and the flow's last update was not DL
     (Thm. 4 forbids consecutive DL), the update is forced dual-layer so
     the §4 version-downgrade rules at the DL segment gateways are the
     inter-shard consistency contract — switches in a foreign domain
     verify locally against the labels, no shard-to-shard chatter.
     A cross-domain path whose flow just rode a DL update takes the
     §7.5 default (SL), which is globally verifiable hop-by-hop anyway.

   Preparation across shards is embarrassingly parallel — [prepare] is a
   pure function of the paths touching only shard-local state once the
   static port index is built — so large batches fan out over OCaml 5
   domains when tracing is off (the trace sink is global mutable state).
   Results are identical to the sequential path. *)

module C = P4update.Controller
module Wire = P4update.Wire

type t = {
  sd_net : Netsim.t;
  sd_partition : Partition.t;
  sd_shards : Shard.t array;
}

let shard_count t = Array.length t.sd_shards
let partition t = t.sd_partition
let shard t i = t.sd_shards.(i)
let controller t i = Shard.controller t.sd_shards.(i)

let owner_of_node t node =
  if node >= 0 && node < Topo.Graph.node_count (Netsim.graph t.sd_net) then
    Partition.domain_of t.sd_partition node
  else 0

(* O(k) ownership scan; k is small (controller replicas, not nodes). *)
let owner_of_flow t ~flow_id =
  let k = shard_count t in
  let rec go i =
    if i >= k then None
    else if C.find_flow (controller t i) ~flow_id <> None then Some i
    else go (i + 1)
  in
  go 0

let route t ~from bytes =
  match Wire.control_of_bytes bytes with
  | Some c when c.Wire.kind = Wire.Ufm ->
    let owner =
      match owner_of_flow t ~flow_id:c.Wire.flow_id with
      | Some i -> i
      | None -> owner_of_node t from
    in
    Shard.note_routed t.sd_shards.(owner);
    C.handle (controller t owner) ~from bytes
  | Some c when c.Wire.kind = Wire.Frm ->
    let owner = owner_of_node t c.Wire.src_node in
    Shard.note_routed t.sd_shards.(owner);
    C.handle (controller t owner) ~from bytes
  | Some _ | None -> ()

let install_router t = Netsim.set_controller t.sd_net (route t)

let create net partition =
  let k = Partition.domains partition in
  let shards =
    Array.init k (fun i ->
        Shard.create net ~id:i ~nodes:(Partition.nodes_of partition i))
  in
  let t = { sd_net = net; sd_partition = partition; sd_shards = shards } in
  (* Each Controller.create above grabbed the network handler; the router
     must be installed last so it owns dispatch. *)
  install_router t;
  t

(* {2 Flow DB operations} *)

let register_flow ?version ?flow_id t ~src ~dst ~size ~path =
  let ctrl = controller t (owner_of_node t src) in
  C.register_flow ?version ?flow_id ctrl ~src ~dst ~size ~path

let find_flow t ~flow_id =
  let k = shard_count t in
  let rec go i =
    if i >= k then None
    else
      match C.find_flow (controller t i) ~flow_id with
      | Some f -> Some f
      | None -> go (i + 1)
  in
  go 0

let flows t =
  Array.to_list t.sd_shards
  |> List.concat_map (fun sh -> C.flows (Shard.controller sh))
  |> List.sort (fun (a : C.flow) b -> compare a.C.flow_id b.C.flow_id)

let retire_flow t ~flow_id =
  Array.iter (fun sh -> C.retire_flow (Shard.controller sh) ~flow_id) t.sd_shards

(* {2 Preparation with gateway stitching} *)

(* Force DL when the new path leaves the owning domain and Thm. 4 allows
   it; [None] falls through to the §7.5 policy. *)
let stitch_type t ctrl ~flow_id ~new_path =
  match C.find_flow ctrl ~flow_id with
  | Some f
    when f.C.last_type <> Wire.Dl && Partition.crosses t.sd_partition new_path
    ->
    Some Wire.Dl
  | _ -> None

let prepare_on t shard ~flow_id ~new_path ?update_type () =
  let ctrl = Shard.controller shard in
  let update_type =
    match update_type with
    | Some _ -> update_type
    | None -> stitch_type t ctrl ~flow_id ~new_path
  in
  let p = C.prepare ctrl ~flow_id ~new_path ?update_type () in
  (p, update_type <> None)

let note_prepare shard ~cross =
  Shard.note_prepared shard;
  if cross then Shard.note_cross shard

let owner_or_fail t ~flow_id ~what =
  match owner_of_flow t ~flow_id with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Sharded.%s: unknown flow %d" what flow_id)

let prepare t ~flow_id ~new_path ?update_type () =
  let shard = t.sd_shards.(owner_or_fail t ~flow_id ~what:"prepare") in
  let p, cross = prepare_on t shard ~flow_id ~new_path ?update_type () in
  note_prepare shard ~cross;
  p

(* Below this many requests the Domain fan-out overhead dominates. *)
let parallel_threshold = 128

let prepare_shard_slice t shard items =
  (* items: (original index, flow_id, new_path), in request order.  Pure
     per-shard work — safe both sequentially and inside a Domain. *)
  List.map
    (fun (idx, flow_id, new_path) ->
      let p, cross = prepare_on t shard ~flow_id ~new_path () in
      (idx, p, cross))
    items

let prepare_batch t requests =
  let k = shard_count t in
  let n = List.length requests in
  let per_shard = Array.make k [] in
  List.iteri
    (fun idx (flow_id, new_path) ->
      let owner = owner_or_fail t ~flow_id ~what:"prepare_batch" in
      per_shard.(owner) <- (idx, flow_id, new_path) :: per_shard.(owner))
    requests;
  let per_shard = Array.map List.rev per_shard in
  let slices =
    if n >= parallel_threshold && k > 1 && not (Obs.Trace.enabled ()) then begin
      (* Pre-build each replica's static port index in the main domain —
         the build reads shared Netsim tables; after it, preparation
         touches only shard-local state. *)
      Array.iter (fun sh -> ignore (C.prepare_batch (Shard.controller sh) [])) t.sd_shards;
      Array.mapi
        (fun i items ->
          let sh = t.sd_shards.(i) in
          Domain.spawn (fun () -> prepare_shard_slice t sh items))
        per_shard
      |> Array.map Domain.join
    end
    else
      Array.mapi (fun i items -> prepare_shard_slice t t.sd_shards.(i) items) per_shard
  in
  (* Stitch slices back into request order; count in the main domain. *)
  let out = Array.make n None in
  Array.iteri
    (fun i slice ->
      let sh = t.sd_shards.(i) in
      List.iter
        (fun (idx, p, cross) ->
          note_prepare sh ~cross;
          out.(idx) <- Some p)
        slice)
    slices;
  Array.to_list out |> List.filter_map Fun.id

(* {2 Update execution} *)

let push t (p : C.prepared) =
  let owner = owner_or_fail t ~flow_id:p.C.p_flow ~what:"push" in
  C.push (controller t owner) p;
  Shard.note_pushed t.sd_shards.(owner)

let update_flow t ~flow_id ~new_path ?update_type () =
  let p = prepare t ~flow_id ~new_path ?update_type () in
  push t p;
  p.C.p_version

let abort_update ?reason t ~flow_id =
  match owner_of_flow t ~flow_id with
  | Some i -> C.abort_update ?reason (controller t i) ~flow_id
  | None -> false

let aborted_version t ~flow_id =
  let k = shard_count t in
  let rec go i =
    if i >= k then None
    else
      match C.aborted_version (controller t i) ~flow_id with
      | Some v -> Some v
      | None -> go (i + 1)
  in
  go 0

(* {2 Reports, recovery, fingerprints} *)

let on_push t f = Array.iter (fun sh -> C.on_push (Shard.controller sh) f) t.sd_shards
let on_report t f = Array.iter (fun sh -> C.on_report (Shard.controller sh) f) t.sd_shards

let completion_time t ~flow_id ~version =
  let k = shard_count t in
  let rec go i =
    if i >= k then None
    else
      match C.completion_time (controller t i) ~flow_id ~version with
      | Some ts -> Some ts
      | None -> go (i + 1)
  in
  go 0

let enable_recovery ?timeout_ms ?max_retries ?deadline_ms t =
  (* The recovery.* counters live in the shared network registry and the
     registry is get-or-create, so all replicas share one set — stats
     read from any shard are the aggregate.  Each replica's topology
     observer reroutes only flows in its own slice. *)
  Array.iter
    (fun sh ->
      C.enable_recovery ?timeout_ms ?max_retries ?deadline_ms (Shard.controller sh))
    t.sd_shards

let recovery_stats t = C.recovery_stats (controller t 0)

let alarm_count t =
  Array.fold_left (fun acc sh -> acc + C.alarm_count (Shard.controller sh)) 0 t.sd_shards

let fingerprint t =
  Array.fold_left
    (fun acc sh -> (acc * 8191) lxor C.fingerprint (Shard.controller sh))
    (Partition.fingerprint t.sd_partition)
    t.sd_shards

(* {2 The Control_plane view} *)

let plane t =
  {
    Plane.shards = shard_count t;
    controllers = Array.map Shard.controller t.sd_shards;
    partition = Some t.sd_partition;
    shard_of_node = (fun node -> owner_of_node t node);
    register_flow =
      (fun ?version ?flow_id ~src ~dst ~size ~path () ->
        register_flow ?version ?flow_id t ~src ~dst ~size ~path);
    find_flow = (fun ~flow_id -> find_flow t ~flow_id);
    flows = (fun () -> flows t);
    retire_flow = (fun ~flow_id -> retire_flow t ~flow_id);
    prepare =
      (fun ~flow_id ~new_path ?update_type () ->
        prepare t ~flow_id ~new_path ?update_type ());
    prepare_batch = (fun reqs -> prepare_batch t reqs);
    push = (fun p -> push t p);
    update_flow =
      (fun ~flow_id ~new_path ?update_type () ->
        update_flow t ~flow_id ~new_path ?update_type ());
    abort_update = (fun ?reason ~flow_id () -> abort_update ?reason t ~flow_id);
    aborted_version = (fun ~flow_id -> aborted_version t ~flow_id);
    on_push = (fun f -> on_push t f);
    on_report = (fun f -> on_report t f);
    completion_time = (fun ~flow_id ~version -> completion_time t ~flow_id ~version);
    enable_recovery =
      (fun ?timeout_ms ?max_retries ?deadline_ms () ->
        enable_recovery ?timeout_ms ?max_retries ?deadline_ms t);
    recovery_stats = (fun () -> recovery_stats t);
    alarm_count = (fun () -> alarm_count t);
    fingerprint = (fun () -> fingerprint t);
  }
