lib/harness/world.mli: Dessim Netsim P4update Topo
