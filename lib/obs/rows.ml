(* Benchmark metric rows and the perf regression gate.

   Every bench subsuite emits flat {"name","unit","value"} rows
   (BENCH_scale.json, BENCH_traffic.json, BENCH_soak.json, BENCH_obs.json
   and the optional --json file).  This module is the one reader/writer
   for that format — the per-harness hand-rolled emitters in bench/main.ml
   route through it — plus the [check] comparator that turns the files
   from write-only artifacts into an enforced perf contract.

   Tolerance model.  Every row has a direction and a relative tolerance
   band, defaulting by unit (a wall-clock throughput is noisy; a
   simulated-time count is deterministic) and overridable per row in the
   baseline file with explicit "tol" / "dir" fields.  Committed baselines
   written by {!write_baseline} pin deterministic metrics tightly and
   wall-clock metrics loosely, so the gate is robust to machine-to-machine
   variance in CI while a unit-tolerance check still fails a 20%
   throughput regression measured on the same machine. *)

type dir =
  | Higher  (* bigger is better: fail when current < baseline - band *)
  | Lower   (* smaller is better: fail when current > baseline + band *)
  | Both    (* must stay put: fail on drift either way *)

type row = {
  r_name : string;
  r_unit : string;
  r_value : float;
  r_tol : float option;  (* relative band override (baseline files only) *)
  r_dir : dir option;
}

let row name unit_ value =
  { r_name = name; r_unit = unit_; r_value = value; r_tol = None; r_dir = None }

let dir_of_string = function
  | "higher" -> Some Higher
  | "lower" -> Some Lower
  | "both" -> Some Both
  | _ -> None

let dir_to_string = function Higher -> "higher" | Lower -> "lower" | Both -> "both"

(* Per-unit defaults.  Wall-clock-derived rates are noisy even on one
   machine (hence 15%, tight enough that a 20% regression fails);
   simulated-time figures and counts are seed-deterministic, so the bands
   are tight to zero.  Unknown units get a conservative middle ground. *)
let default_dir unit_ =
  match unit_ with
  | "events/s" | "updates/s" | "pkts/s" | "ops/s" | "x" | "ratio" | "bool" -> Higher
  | "ms" | "ns/run" | "count" | "s" | "%" -> Lower
  | "updates" | "pkts" | "packets" | "events" | "flows" -> Both
  | _ -> Both

let default_tol unit_ =
  match unit_ with
  | "events/s" | "updates/s" | "pkts/s" | "ops/s" -> 0.15
  | "x" -> 0.5
  | "ns/run" -> 0.5
  | "ms" -> 0.25
  | "count" | "bool" -> 0.0
  | "ratio" -> 0.05
  | "s" -> 1.0
  | "%" -> 1.0
  | "updates" | "pkts" | "packets" | "events" | "flows" -> 0.02
  | _ -> 0.25

(* Absolute floor for the band so near-zero baselines are not
   over-pinned: a 1.2% overhead baseline tolerates a few points of noise,
   a 0.3 ms p50 tolerates a fraction of a millisecond.  Counts keep a
   zero floor — "violations = 0" must stay exactly zero. *)
let abs_floor unit_ =
  match unit_ with
  | "%" -> 5.0
  | "ms" -> 0.5
  | "count" | "bool" -> 0.0
  | _ -> 1e-9

(* The committed-baseline band: explicit per-row tolerances wide enough
   to absorb cross-machine wall-clock variance (CI runners vs dev boxes),
   written by [write_baseline].  Deterministic units return [None] and
   keep their tight defaults. *)
let baseline_tol unit_ =
  match unit_ with
  | "events/s" | "updates/s" | "pkts/s" | "ops/s" -> Some 0.8
  | "x" -> Some 0.9
  | "ns/run" -> Some 3.0
  | "s" -> Some 3.0
  | _ -> None

(* --- JSON read/write ------------------------------------------------ *)

let to_json ?(baseline = false) rows =
  Json.List
    (List.map
       (fun r ->
         let tol =
           match r.r_tol with
           | Some t -> Some t
           | None -> if baseline then baseline_tol r.r_unit else None
         in
         Json.Obj
           ([
              ("name", Json.Str r.r_name);
              ("unit", Json.Str r.r_unit);
              ("value", Json.Float r.r_value);
            ]
           @ (match tol with Some t -> [ ("tol", Json.Float t) ] | None -> [])
           @
           match r.r_dir with
           | Some d -> [ ("dir", Json.Str (dir_to_string d)) ]
           | None -> []))
       rows)

let write ?baseline ~path rows =
  let oc = open_out path in
  output_string oc (Json.to_string (to_json ?baseline rows));
  output_char oc '\n';
  close_out oc

let write_baseline ~path rows = write ~baseline:true ~path rows

let number = function
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | _ -> None

let of_json j =
  match j with
  | Json.List items ->
    List.filter_map
      (fun item ->
        match (Json.member "name" item, Json.member "unit" item, number (Json.member "value" item)) with
        | Some (Json.Str name), Some (Json.Str unit_), Some value ->
          Some
            {
              r_name = name;
              r_unit = unit_;
              r_value = value;
              r_tol = number (Json.member "tol" item);
              r_dir =
                (match Json.member "dir" item with
                 | Some (Json.Str d) -> dir_of_string d
                 | _ -> None);
            }
        | _ -> None)
      items
  | _ -> invalid_arg "Rows.of_json: expected a JSON array of rows"

let read ~path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Json.of_string s with
  | j -> of_json j
  | exception Json.Parse_error e ->
    invalid_arg (Printf.sprintf "Rows.read %s: %s" path e)

(* --- the regression gate -------------------------------------------- *)

type verdict = {
  vd_name : string;
  vd_ok : bool;
  vd_line : string;  (* human-readable judgement *)
}

let band baseline =
  let tol = match baseline.r_tol with Some t -> t | None -> default_tol baseline.r_unit in
  tol *. Float.max (Float.abs baseline.r_value) (abs_floor baseline.r_unit)

let judge ~baseline ~current =
  let d =
    match baseline.r_dir with Some d -> d | None -> default_dir baseline.r_unit
  in
  let b = band baseline in
  let delta = current.r_value -. baseline.r_value in
  let ok =
    match d with
    | Higher -> delta >= -.b
    | Lower -> delta <= b
    | Both -> Float.abs delta <= b
  in
  let line =
    Printf.sprintf "%-44s %14.2f vs %14.2f %-9s (%s, band %.2f)%s" baseline.r_name
      current.r_value baseline.r_value baseline.r_unit (dir_to_string d) b
      (if ok then "" else "  <-- REGRESSION")
  in
  { vd_name = baseline.r_name; vd_ok = ok; vd_line = line }

(* Compare current rows against a pinned baseline.  Every baseline row
   must be present in the current run (a silently vanished metric is a
   failure, not a pass); rows only the current run has are ignored —
   adding metrics must not break the gate. *)
let check ~baseline ~current =
  let verdicts =
    List.map
      (fun b ->
        match List.find_opt (fun c -> c.r_name = b.r_name) current with
        | Some c -> judge ~baseline:b ~current:c
        | None ->
          {
            vd_name = b.r_name;
            vd_ok = false;
            vd_line =
              Printf.sprintf "%-44s MISSING from current rows  <-- REGRESSION"
                b.r_name;
          })
      baseline
  in
  let ok = List.for_all (fun v -> v.vd_ok) verdicts in
  (ok, verdicts)

let report_lines ~baseline_path verdicts =
  let failed = List.filter (fun v -> not v.vd_ok) verdicts in
  Printf.sprintf "regression gate vs %s: %d metrics, %d regressions -> %s"
    baseline_path (List.length verdicts) (List.length failed)
    (if failed = [] then "OK" else "FAIL")
  :: List.map (fun v -> "  " ^ v.vd_line) verdicts
