test/test_inconsistency.ml: Alcotest Array Controller Harness List Netsim P4update Printf Switch Topo Uib Wire
