(* The single run-configuration record shared by every harness entry
   point (experiments, chaos, traced runs, the model-checking scenarios
   and the scale engine).  Before this existed each runner grew its own
   scattering of [?seed] / [?runs] / [?iterations] / [~congestion]
   optional arguments; a [Run_config.t] carries all of them plus the
   cross-cutting knobs (trace sink, fault plan, reorder window) so the
   CLI builds exactly one value per invocation and passes it down.

   This module is deliberately dependency-free within the harness: the
   fault plan is a structural record translated by [Chaos], not a
   reference to [Chaos.config], so [Chaos] (which needs [World] and
   [Invariants]) can depend on it without a cycle. *)

(* Mirrors the chaos harness's knobs; [Chaos.config_of_plan] translates. *)
type fault_plan = {
  fp_flows : int;
  fp_window_ms : float;
  fp_horizon_ms : float;
  fp_probe_interval_ms : float;
  fp_data_prob : float;
  fp_control_prob : float;
  fp_max_element_failures : int;
  fp_recovery : bool;
  fp_watchdog_ms : float;
}

(* The one switch-watchdog default: every harness (chaos, soak) derives
   from this constant instead of repeating the literal. *)
let default_watchdog_ms = 400.0

(* Values mirror [Chaos.default_config]; a regression test keeps the two
   in sync through [Chaos.config_of_plan]. *)
let default_faults =
  {
    fp_flows = 3;
    fp_window_ms = 3000.0;
    fp_horizon_ms = 120_000.0;
    fp_probe_interval_ms = 500.0;
    fp_data_prob = 0.08;
    fp_control_prob = 0.08;
    fp_max_element_failures = 2;
    fp_recovery = true;
    fp_watchdog_ms = default_watchdog_ms;
  }

type t = {
  seed : int;
  runs : int;
  iterations : int;
  congestion : bool;
  trace_sink : Obs.Trace.sink option;
  fault_plan : fault_plan option;
  reorder_window_ms : float option;
  recorder : bool;
  incident_dir : string option;
  tick_ms : float option;
  series_out : string option;
  live_top : bool;
  intent_churn : bool;
  shards : int;
  kernel : Dessim.Sim.kernel;
}

let default =
  {
    seed = 1;
    runs = 30;
    iterations = 1000;
    congestion = false;
    trace_sink = None;
    fault_plan = None;
    reorder_window_ms = None;
    recorder = true;
    incident_dir = None;
    tick_ms = None;
    series_out = None;
    live_top = false;
    intent_churn = false;
    shards = 1;
    kernel = Dessim.Sim.Heap;
  }

let make ?(seed = default.seed) ?(runs = default.runs)
    ?(iterations = default.iterations) ?(congestion = default.congestion)
    ?trace_sink ?fault_plan ?reorder_window_ms ?(recorder = default.recorder)
    ?incident_dir ?tick_ms ?series_out ?(live_top = default.live_top)
    ?(intent_churn = default.intent_churn) ?(shards = default.shards)
    ?(kernel = default.kernel) () =
  {
    seed;
    runs;
    iterations;
    congestion;
    trace_sink;
    fault_plan;
    reorder_window_ms;
    recorder;
    incident_dir;
    tick_ms;
    series_out;
    live_top;
    intent_churn;
    shards;
    kernel;
  }

let with_seed seed cfg = { cfg with seed }
let with_runs runs cfg = { cfg with runs }
let with_trace_sink sink cfg = { cfg with trace_sink = Some sink }
let with_faults plan cfg = { cfg with fault_plan = Some plan }

(* The seed of the [i]th run of a multi-run experiment: run 0 uses the
   configured seed itself, so single-run and multi-run entry points agree
   on what "the" seed means. *)
let run_seed cfg i = cfg.seed + i
