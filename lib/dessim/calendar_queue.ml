(* Calendar queue (Brown 1988) over timestamped events.

   The flat binary heap ([Event_heap]) costs O(log n) per operation; a
   calendar queue makes enqueue/dequeue O(1) amortized when event times
   arrive roughly uniformly — which is exactly what the scale engine's
   Poisson bursts produce.  Time is divided into buckets of [width]
   simulated ms arranged in a circular array (a "year" is
   [nbuckets * width]); an event lands in the bucket of its epoch
   [floor(time / width)] modulo the array size, and dequeue scans the
   cursor bucket for the earliest eligible entry.

   Layout mirrors [Event_heap]: per-bucket parallel flat arrays (times /
   seqs / untyped payloads), tags in a side table keyed by seq, and
   (time, seq) strict ordering so delivery order is byte-identical to
   the heap — enforced by the differential qcheck oracle against
   [Event_heap_ref] in [test/test_scale.ml].

   Bucket-width auto-tuning: when occupancy exceeds two entries per
   bucket the bucket count doubles and the width is re-derived from the
   observed time span, targeting ~2 entries per bucket.  The tuning is a
   pure function of the queue's content, so runs stay deterministic.

   Heap fallback: distributions a calendar fundamentally cannot spread —
   every event at one instant, or a huge pending set concentrated in one
   bucket after a re-tune — would degrade dequeue to O(n).  When a
   re-tune detects such a shape the queue migrates its entries (with
   their already-issued seqs, via [Event_heap.push_seq]) into a private
   [Event_heap] and delegates from then on.  The switch is
   content-determined and order-preserving, so it is invisible except in
   cost. *)

type tag = Event_heap.tag = {
  tag_kind : string;
  tag_node : int;
  tag_flow : int;
  tag_hash : int;
}

(* Freed payload slots are reset to this immediate so a bucket never
   retains a popped thunk. *)
let dummy = Obj.repr 0

(* One bucket: an unordered growable vector in SoA layout.  [be] holds
   each entry's epoch exactly as computed at placement time, so the
   cursor's eligibility test is a load + compare that can never disagree
   with the bucket the entry landed in (see [epoch_of]). *)
type bucket = {
  mutable bt : float array;
  mutable be : float array;
  mutable bs : int array;
  mutable bp : Obj.t array;
  mutable blen : int;
}

let new_bucket () = { bt = [||]; be = [||]; bs = [||]; bp = [||]; blen = 0 }

type 'a t = {
  mutable buckets : bucket array;  (* length is a power of two *)
  mutable mask : int;              (* Array.length buckets - 1 *)
  mutable width : float;           (* bucket width in simulated ms *)
  mutable cur : int;               (* cursor: bucket being drained *)
  mutable cur_epoch : float;       (* epoch of [cur]'s current year pass *)
  mutable len : int;
  mutable next_seq : int;
  tag_table : (int, tag) Hashtbl.t;
  (* Set once by a re-tune that detects a pathological distribution;
     every operation delegates afterwards. *)
  mutable fallback : 'a Event_heap.t option;
}

let initial_buckets = 16
let initial_width = 1.0

(* Beyond this many buckets the calendar stops paying for itself
   (cache-resident bucket array) and a concentrated distribution is
   driving growth; hand over to the heap instead. *)
let max_buckets = 65536

let create () =
  {
    buckets = Array.init initial_buckets (fun _ -> new_bucket ());
    mask = initial_buckets - 1;
    width = initial_width;
    cur = 0;
    cur_epoch = 0.0;
    len = 0;
    next_seq = 0;
    tag_table = Hashtbl.create 8;
    fallback = None;
  }

let[@inline] tag_of q seq =
  if Hashtbl.length q.tag_table = 0 then None
  else Hashtbl.find_opt q.tag_table seq

(* ---- bucket vector ---------------------------------------------------- *)

let bucket_grow b =
  let capacity = Array.length b.bt in
  let new_capacity = max 4 (2 * capacity) in
  let bt = Array.make new_capacity 0.0 in
  let be = Array.make new_capacity 0.0 in
  let bs = Array.make new_capacity 0 in
  let bp = Array.make new_capacity dummy in
  Array.blit b.bt 0 bt 0 b.blen;
  Array.blit b.be 0 be 0 b.blen;
  Array.blit b.bs 0 bs 0 b.blen;
  Array.blit b.bp 0 bp 0 b.blen;
  b.bt <- bt;
  b.be <- be;
  b.bs <- bs;
  b.bp <- bp

let[@inline] bucket_add b ~time ~epoch ~seq ~payload =
  if b.blen = Array.length b.bt then bucket_grow b;
  let i = b.blen in
  Array.unsafe_set b.bt i time;
  Array.unsafe_set b.be i epoch;
  Array.unsafe_set b.bs i seq;
  Array.unsafe_set b.bp i payload;
  b.blen <- i + 1

(* Order within a bucket is immaterial, so removal is swap-with-last. *)
let[@inline] bucket_remove b i =
  let last = b.blen - 1 in
  if i < last then begin
    Array.unsafe_set b.bt i (Array.unsafe_get b.bt last);
    Array.unsafe_set b.be i (Array.unsafe_get b.be last);
    Array.unsafe_set b.bs i (Array.unsafe_get b.bs last);
    Array.unsafe_set b.bp i (Array.unsafe_get b.bp last)
  end;
  Array.unsafe_set b.bp last dummy;
  b.blen <- last

(* ---- cursor ----------------------------------------------------------- *)

(* Epoch (bucket-grid index) of a timestamp, computed in float so huge
   timestamps cannot overflow the int conversion path.  Everything that
   compares an entry against the cursor — placement, eligibility, the
   push-side backward reset — goes through this one function: the
   quotient's rounding is inexact, and any second, differently-rounded
   computation of the same boundary (e.g. an upper bound formed as
   [(epoch + 1) * width]) can disagree with placement and strand a
   boundary-straddling entry in a bucket the scan deems empty for this
   pass. *)
let[@inline] epoch_of q time = Float.floor (time /. q.width)

(* Point the cursor at [time]'s bucket. *)
let[@inline] reset_cursor q time =
  let epoch = epoch_of q time in
  q.cur <- int_of_float epoch land q.mask;
  q.cur_epoch <- epoch


(* ---- re-tune / fallback ----------------------------------------------- *)

let iter_entries q f =
  Array.iter
    (fun b ->
      for i = 0 to b.blen - 1 do
        f ~time:b.bt.(i) ~seq:b.bs.(i) ~payload:b.bp.(i)
      done)
    q.buckets

let migrate_to_heap q =
  let h = Event_heap.create () in
  iter_entries q (fun ~time ~seq ~payload ->
      Event_heap.push_seq ?tag:(tag_of q seq) h ~time ~seq (Obj.obj payload));
  Hashtbl.reset q.tag_table;
  q.buckets <- [||];
  q.mask <- 0;
  q.fallback <- Some h

(* Rebuild with [nbuckets] buckets and a width derived from the observed
   span, cursor repointed at the earliest entry.  Detects the two
   pathological shapes and migrates instead: a zero-span pending set
   (same-instant storm) and a rebuild that still concentrates most
   entries in one bucket (heavily clustered times). *)
let rebuild q nbuckets =
  if nbuckets > max_buckets then migrate_to_heap q
  else begin
    let min_t = ref infinity and max_t = ref neg_infinity in
    iter_entries q (fun ~time ~seq:_ ~payload:_ ->
        if time < !min_t then min_t := time;
        if time > !max_t then max_t := time);
    if q.len > 1 && !max_t <= !min_t then migrate_to_heap q
    else begin
      let width =
        if q.len <= 1 then q.width
        else Float.max ((!max_t -. !min_t) *. 2.0 /. float_of_int q.len) 1e-9
      in
      let old = q.buckets in
      q.buckets <- Array.init nbuckets (fun _ -> new_bucket ());
      q.mask <- nbuckets - 1;
      q.width <- width;
      let max_occ = ref 0 in
      Array.iter
        (fun b ->
          for i = 0 to b.blen - 1 do
            (* Epochs are re-derived under the new width. *)
            let epoch = epoch_of q b.bt.(i) in
            let nb = q.buckets.(int_of_float epoch land q.mask) in
            bucket_add nb ~time:b.bt.(i) ~epoch ~seq:b.bs.(i) ~payload:b.bp.(i);
            if nb.blen > !max_occ then max_occ := nb.blen
          done)
        old;
      if q.len > 0 then reset_cursor q !min_t;
      if q.len > 256 && !max_occ * 2 > q.len then migrate_to_heap q
    end
  end

(* ---- the queue -------------------------------------------------------- *)

let push ?tag q ~time payload =
  match q.fallback with
  | Some h -> Event_heap.push ?tag h ~time payload
  | None ->
    let seq = q.next_seq in
    q.next_seq <- seq + 1;
    (match tag with None -> () | Some t -> Hashtbl.replace q.tag_table seq t);
    let epoch = epoch_of q time in
    bucket_add
      q.buckets.(int_of_float epoch land q.mask)
      ~time ~epoch ~seq ~payload:(Obj.repr payload);
    q.len <- q.len + 1;
    (* An empty queue's cursor is stale; an arrival earlier than the
       cursor bucket's year pass would otherwise wait a whole year. *)
    if q.len = 1 || epoch < q.cur_epoch then begin
      q.cur <- int_of_float epoch land q.mask;
      q.cur_epoch <- epoch
    end;
    if q.len > 2 * (q.mask + 1) then rebuild q (2 * (q.mask + 1))

(* Locate the next entry in (time, seq) order and return its (bucket,
   slot), advancing the cursor as a side effect.  Every pending entry
   has [epoch >= cur_epoch] (pushes reset the cursor backwards when
   needed), so entries eligible now — [epoch = cur_epoch] — all live in
   the cursor bucket; if a whole year of buckets turns up empty the
   pending set is sparse and the cursor jumps straight to the global
   minimum. *)
let find_next q =
  if q.len = 0 then None
  else begin
    let result = ref (-1) in
    let scanned = ref 0 in
    let nbuckets = q.mask + 1 in
    while !result < 0 && !scanned < nbuckets do
      let b = q.buckets.(q.cur) in
      let best = ref (-1) in
      let best_t = ref 0.0 and best_s = ref 0 in
      for i = 0 to b.blen - 1 do
        let ti = Array.unsafe_get b.bt i in
        if Array.unsafe_get b.be i <= q.cur_epoch then
          if
            !best < 0 || ti < !best_t
            || (ti = !best_t && Array.unsafe_get b.bs i < !best_s)
          then begin
            best := i;
            best_t := ti;
            best_s := Array.unsafe_get b.bs i
          end
      done;
      if !best >= 0 then result := !best
      else begin
        q.cur <- (q.cur + 1) land q.mask;
        q.cur_epoch <- q.cur_epoch +. 1.0;
        incr scanned
      end
    done;
    if !result >= 0 then Some (q.cur, !result)
    else begin
      (* Empty year: direct min scan, then repoint the cursor there. *)
      let bb = ref (-1) and bi = ref (-1) in
      let bt = ref infinity and bs = ref max_int in
      Array.iteri
        (fun bidx b ->
          for i = 0 to b.blen - 1 do
            let ti = b.bt.(i) in
            if ti < !bt || (ti = !bt && b.bs.(i) < !bs) then begin
              bb := bidx;
              bi := i;
              bt := ti;
              bs := b.bs.(i)
            end
          done)
        q.buckets;
      reset_cursor q !bt;
      Some (!bb, !bi)
    end
  end

let pop q =
  match q.fallback with
  | Some h -> Event_heap.pop h
  | None -> (
    match find_next q with
    | None -> None
    | Some (bidx, i) ->
      let b = q.buckets.(bidx) in
      let time = b.bt.(i) in
      let seq = b.bs.(i) in
      let payload : 'a = Obj.obj b.bp.(i) in
      bucket_remove b i;
      q.len <- q.len - 1;
      if Hashtbl.length q.tag_table <> 0 then Hashtbl.remove q.tag_table seq;
      Some (time, payload))

let peek_time q =
  match q.fallback with
  | Some h -> Event_heap.peek_time h
  | None -> (
    match find_next q with
    | None -> None
    | Some (bidx, i) -> Some q.buckets.(bidx).bt.(i))

let size q = match q.fallback with Some h -> Event_heap.size h | None -> q.len
let is_empty q = size q = 0

let clear q =
  match q.fallback with
  | Some h -> Event_heap.clear h
  | None ->
    Array.iter
      (fun b ->
        Array.fill b.bp 0 b.blen dummy;
        b.blen <- 0)
      q.buckets;
    Hashtbl.reset q.tag_table;
    q.len <- 0

let fold q ~init ~f =
  match q.fallback with
  | Some h -> Event_heap.fold h ~init ~f
  | None ->
    let acc = ref init in
    iter_entries q (fun ~time ~seq ~payload:_ ->
        acc := f !acc ~time ~seq ~tag:(tag_of q seq));
    !acc

let remove_seq q seq =
  match q.fallback with
  | Some h -> Event_heap.remove_seq h seq
  | None ->
    let found = ref None in
    let nbuckets = q.mask + 1 in
    let bidx = ref 0 in
    while !found = None && !bidx < nbuckets do
      let b = q.buckets.(!bidx) in
      let i = ref 0 in
      while !found = None && !i < b.blen do
        if b.bs.(!i) = seq then found := Some (b, !i) else incr i
      done;
      incr bidx
    done;
    (match !found with
     | None -> None
     | Some (b, i) ->
       let time = b.bt.(i) in
       let tag = tag_of q seq in
       let payload : 'a = Obj.obj b.bp.(i) in
       bucket_remove b i;
       q.len <- q.len - 1;
       if Hashtbl.length q.tag_table <> 0 then Hashtbl.remove q.tag_table seq;
       Some (time, tag, payload))

(* Shrink to fit: rebuild with the smallest power-of-two bucket count
   targeting ~2 entries per bucket, re-deriving the width from the
   surviving entries — the down-sizing counterpart of the push-side
   re-tune, run at quiesce points (never automatically, so a draining
   queue is not rebuilt over and over). *)
let compact q =
  match q.fallback with
  | Some h -> Event_heap.compact h
  | None ->
    let target =
      let c = ref initial_buckets in
      while 2 * !c < q.len do c := 2 * !c done;
      !c
    in
    rebuild q target

let fallback_active q = q.fallback <> None
