(* End-to-end tests for single-layer updates (Alg. 1, §7.1–7.3). *)

open P4update

let fig1 () = Topo.Topologies.fig1 ()

let check_consistent w ~flow_id ~src =
  let outcome = Harness.Fwdcheck.trace w.Harness.World.net w.Harness.World.switches ~flow_id ~src in
  Alcotest.(check bool)
    (Format.asprintf "forwarding consistent (%a)" Harness.Fwdcheck.pp_outcome outcome)
    true
    (Harness.Fwdcheck.is_consistent outcome)

let path_of_trace w ~flow_id ~src =
  match Harness.Fwdcheck.trace w.Harness.World.net w.Harness.World.switches ~flow_id ~src with
  | Harness.Fwdcheck.Reaches_egress path -> path
  | o -> Alcotest.failf "flow broken: %a" Harness.Fwdcheck.pp_outcome o

let test_initial_state () =
  let w = Harness.World.make (fig1 ()) in
  let flow =
    Harness.World.install_flow w ~src:0 ~dst:7 ~size:100 ~path:Topo.Topologies.fig1_old_path
  in
  let path = path_of_trace w ~flow_id:flow.flow_id ~src:0 in
  Alcotest.(check (list int)) "initial path" Topo.Topologies.fig1_old_path path

let test_sl_converges () =
  let w = Harness.World.make (fig1 ()) in
  let flow =
    Harness.World.install_flow w ~src:0 ~dst:7 ~size:100 ~path:Topo.Topologies.fig1_old_path
  in
  let version =
    Controller.update_flow w.controller ~flow_id:flow.flow_id
      ~new_path:Topo.Topologies.fig1_new_path ~update_type:Wire.Sl ()
  in
  let _ = Harness.World.run w in
  Alcotest.(check int) "version pushed" 2 version;
  let path = path_of_trace w ~flow_id:flow.flow_id ~src:0 in
  Alcotest.(check (list int)) "converged to new path" Topo.Topologies.fig1_new_path path;
  List.iter
    (fun node ->
      Alcotest.(check int)
        (Printf.sprintf "node %d at version 2" node)
        2
        (Switch.version_of w.switches.(node) ~flow_id:flow.flow_id))
    Topo.Topologies.fig1_new_path;
  (match Controller.completion_time w.controller ~flow_id:flow.flow_id ~version with
   | Some t -> Alcotest.(check bool) "positive completion time" true (t > 0.0)
   | None -> Alcotest.fail "no success UFM received");
  Alcotest.(check int) "no alarms" 0 (Controller.alarm_count w.controller)

let test_sl_consistent_throughout () =
  (* The forwarding state must be loop- and blackhole-free after every
     single event of the update (Thm. 1). *)
  let w = Harness.World.make (fig1 ()) in
  let flow =
    Harness.World.install_flow w ~src:0 ~dst:7 ~size:100 ~path:Topo.Topologies.fig1_old_path
  in
  let _ =
    Controller.update_flow w.controller ~flow_id:flow.flow_id
      ~new_path:Topo.Topologies.fig1_new_path ~update_type:Wire.Sl ()
  in
  let steps = ref 0 in
  while Dessim.Sim.step w.sim do
    incr steps;
    check_consistent w ~flow_id:flow.flow_id ~src:0
  done;
  Alcotest.(check bool) "simulation progressed" true (!steps > 5)

let test_sl_updates_backwards () =
  (* Rules must be committed from the egress toward the ingress: when the
     ingress commits, every other node already has (Thm. 1 blackhole
     argument). *)
  let w = Harness.World.make (fig1 ()) in
  let flow =
    Harness.World.install_flow w ~src:0 ~dst:7 ~size:100 ~path:Topo.Topologies.fig1_old_path
  in
  let order = ref [] in
  Array.iter
    (fun sw ->
      Switch.on_commit sw (fun ~flow_id:_ ~version:_ ~time:_ ->
          order := Switch.node sw :: !order))
    w.switches;
  let _ =
    Controller.update_flow w.controller ~flow_id:flow.flow_id
      ~new_path:Topo.Topologies.fig1_new_path ~update_type:Wire.Sl ()
  in
  let _ = Harness.World.run w in
  let order = List.rev !order in
  Alcotest.(check (list int)) "egress-to-ingress order"
    (List.rev Topo.Topologies.fig1_new_path)
    order

let test_two_sequential_sl_updates () =
  let w = Harness.World.make (fig1 ()) in
  let flow =
    Harness.World.install_flow w ~src:0 ~dst:7 ~size:100 ~path:Topo.Topologies.fig1_old_path
  in
  let v2 =
    Controller.update_flow w.controller ~flow_id:flow.flow_id
      ~new_path:Topo.Topologies.fig1_new_path ~update_type:Wire.Sl ()
  in
  let _ = Harness.World.run w in
  let v3 =
    Controller.update_flow w.controller ~flow_id:flow.flow_id
      ~new_path:Topo.Topologies.fig1_old_path ~update_type:Wire.Sl ()
  in
  let _ = Harness.World.run w in
  Alcotest.(check int) "second version" 3 v3;
  Alcotest.(check bool) "versions increase" true (v3 > v2);
  let path = path_of_trace w ~flow_id:flow.flow_id ~src:0 in
  Alcotest.(check (list int)) "back on the old path" Topo.Topologies.fig1_old_path path

let test_fast_forward_skips_intermediate () =
  (* §4.2: push V2 and V3 back-to-back; nodes may skip V2 entirely and the
     network must converge to V3. *)
  let w = Harness.World.make (fig1 ()) in
  let flow =
    Harness.World.install_flow w ~src:0 ~dst:7 ~size:100 ~path:Topo.Topologies.fig1_old_path
  in
  let _v2 =
    Controller.update_flow w.controller ~flow_id:flow.flow_id
      ~new_path:Topo.Topologies.fig1_new_path ~update_type:Wire.Sl ()
  in
  (* Immediately push the next configuration, while U2 is in flight. *)
  let v3 =
    Controller.update_flow w.controller ~flow_id:flow.flow_id
      ~new_path:Topo.Topologies.fig1_old_path ~update_type:Wire.Sl ()
  in
  let steps = ref 0 in
  while Dessim.Sim.step w.sim do
    incr steps;
    check_consistent w ~flow_id:flow.flow_id ~src:0
  done;
  let path = path_of_trace w ~flow_id:flow.flow_id ~src:0 in
  Alcotest.(check (list int)) "converged to latest version" Topo.Topologies.fig1_old_path path;
  List.iter
    (fun node ->
      Alcotest.(check int)
        (Printf.sprintf "node %d at version %d" node v3)
        v3
        (Switch.version_of w.switches.(node) ~flow_id:flow.flow_id))
    Topo.Topologies.fig1_old_path

let suite =
  [
    Alcotest.test_case "initial state forwards on the old path" `Quick test_initial_state;
    Alcotest.test_case "SL update converges to the new path" `Quick test_sl_converges;
    Alcotest.test_case "SL keeps consistency after every event" `Quick
      test_sl_consistent_throughout;
    Alcotest.test_case "SL commits from egress to ingress" `Quick test_sl_updates_backwards;
    Alcotest.test_case "two sequential SL updates" `Quick test_two_sequential_sl_updates;
    Alcotest.test_case "fast-forward to the latest version" `Quick
      test_fast_forward_skips_intermediate;
  ]
