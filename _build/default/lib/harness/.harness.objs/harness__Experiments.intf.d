lib/harness/experiments.mli: Scenarios
