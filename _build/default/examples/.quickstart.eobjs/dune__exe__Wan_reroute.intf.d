examples/wan_reroute.mli:
