module Sim = Dessim.Sim

type t = {
  sim : Sim.t;
  net : Netsim.t;
  switches : P4update.Switch.t array;
  controller : P4update.Controller.t;
}

let make ?seed ?config topo =
  let sim = Sim.create ?seed () in
  let net = Netsim.create ?config sim topo in
  let n = Topo.Graph.node_count topo.Topo.Topologies.graph in
  let switches = Array.init n (fun node -> P4update.Switch.create net ~node) in
  let controller = P4update.Controller.create net in
  { sim; net; switches; controller }

let install_flow w ~src ~dst ~size ~path =
  let flow = P4update.Controller.register_flow w.controller ~src ~dst ~size ~path in
  let labels = P4update.Label.of_path w.net path in
  List.iter
    (fun (l : P4update.Label.node_label) ->
      P4update.Switch.install_initial w.switches.(l.node) ~flow_id:flow.flow_id ~version:1
        ~dist:l.dist_new ~egress_port:l.egress_port ~notify_port:l.notify_port ~size)
    labels;
  flow

let run ?until w = Sim.run ?until w.sim
